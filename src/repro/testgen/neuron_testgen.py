"""Baseline: test generation driven by *neuron* coverage.

Tables II and III compare the paper's parameter-coverage tests against "tests
with neuron coverage" — the hardware-testing practice of choosing tests that
activate as many neurons as possible (DeepXplore/DeepCT style).  This
generator performs the same greedy selection as Algorithm 1 but scores
candidates by marginal *neuron* coverage instead of parameter coverage.

The resulting test sets achieve high neuron coverage quickly yet leave many
weight parameters unexercised (two neurons may each be covered by different
tests while never being active together), which is exactly the weakness the
paper's detection-rate comparison exposes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.coverage.neuron_coverage import NeuronCoverageTracker, NeuronMaskCache
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator

logger = get_logger("testgen.neuron")


class NeuronCoverageSelector(TestGenerator):
    """Greedy neuron-coverage-maximising selection from the training set."""

    method_name = "neuron-selection"

    def __init__(
        self,
        model: Sequential,
        training_set: Dataset,
        threshold: float = 0.0,
        candidate_pool: Optional[int] = None,
        rng: RngLike = None,
        engine: Optional[Engine] = None,
    ) -> None:
        super().__init__(model, criterion=None, engine=engine)
        if len(training_set) == 0:
            raise ValueError("training set is empty")
        self.training_set = training_set
        self.threshold = float(threshold)
        self.candidate_pool = candidate_pool
        self._rng = as_generator(rng)
        self._cache: Optional[NeuronMaskCache] = None
        self._pool_indices: Optional[np.ndarray] = None

    def _ensure_cache(self) -> NeuronMaskCache:
        if self._cache is None:
            n = len(self.training_set)
            if self.candidate_pool is not None and self.candidate_pool < n:
                idx = self._rng.choice(n, size=self.candidate_pool, replace=False)
            else:
                idx = np.arange(n)
            self._pool_indices = idx
            images = self.training_set.images[idx]
            logger.info("building neuron-mask cache for %d candidates", images.shape[0])
            self._cache = NeuronMaskCache(
                self.model, images, self.threshold, engine=self.engine
            )
        return self._cache

    def generate(self, num_tests: int) -> GenerationResult:
        """Greedily pick ``num_tests`` samples maximising neuron coverage.

        The ``coverage_history`` recorded in the result is *neuron* coverage
        (this generator's objective); use
        :func:`repro.coverage.set_validation_coverage` on ``result.tests`` to
        measure the parameter coverage these tests incidentally achieve.
        """
        if num_tests <= 0:
            raise ValueError("num_tests must be positive")
        cache = self._ensure_cache()
        tracker = NeuronCoverageTracker(self.model, threshold=self.threshold)
        available = np.ones(len(cache), dtype=bool)

        selected: list[int] = []
        history: list[float] = []
        gains: list[float] = []

        budget = min(num_tests, len(cache))
        for _ in range(budget):
            # packed greedy step: popcount marginal gains with an explicit
            # availability subset, dense-identical tie-breaking
            best, _gain = cache.best_candidate(tracker.covered_map, available)
            gain = tracker.add_mask(cache.packed_mask(best))
            available[best] = False
            selected.append(best)
            gains.append(gain)
            history.append(tracker.coverage)

        assert self._pool_indices is not None
        return GenerationResult(
            tests=cache.images[selected],
            coverage_history=history,
            gains=gains,
            sources=["training"] * len(selected),
            dataset_indices=self._pool_indices[selected],
            method=self.method_name,
        )


__all__ = ["NeuronCoverageSelector"]
