"""Baseline: uniformly random selection of tests from the training set.

Not part of the paper's headline comparison, but a useful floor: it shows how
much of the coverage of Algorithm 1 comes from the greedy criterion rather
than from training samples being individually good (Fig. 2 already shows a
single training sample covers a lot on its own).
"""

from __future__ import annotations

from typing import Optional

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.parameter_coverage import CoverageTracker, packed_activation_masks
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.utils.rng import RngLike, as_generator


class RandomSelector(TestGenerator):
    """Select tests uniformly at random (without replacement) from a dataset."""

    method_name = "random-selection"

    def __init__(
        self,
        model: Sequential,
        training_set: Dataset,
        criterion: Optional[ActivationCriterion] = None,
        rng: RngLike = None,
        engine: Optional[Engine] = None,
    ) -> None:
        super().__init__(model, criterion or default_criterion_for(model), engine)
        if len(training_set) == 0:
            raise ValueError("training set is empty")
        self.training_set = training_set
        self._rng = as_generator(rng)

    def generate(self, num_tests: int) -> GenerationResult:
        if num_tests <= 0:
            raise ValueError("num_tests must be positive")
        n = min(num_tests, len(self.training_set))
        idx = self._rng.choice(len(self.training_set), size=n, replace=False)
        tests = self.training_set.images[idx]

        tracker = CoverageTracker(self.model, self.criterion)
        masks = packed_activation_masks(self.model, tests, self.criterion, self.engine)
        history, gains = [], []
        for i in range(len(masks)):
            gains.append(tracker.add_mask(masks.row(i)))
            history.append(tracker.coverage)

        return GenerationResult(
            tests=tests,
            coverage_history=history,
            gains=gains,
            sources=["training"] * n,
            dataset_indices=idx,
            method=self.method_name,
        )


__all__ = ["RandomSelector"]
