"""Name-based registry of test-generation strategies.

Declarative experiment specs (``repro.campaign``) reference generators by
name, so the mapping from name to :class:`~repro.testgen.base.TestGenerator`
construction has to live in one place rather than being re-hardcoded by every
driver.  Each registered factory normalises the shared construction surface
(model, training set, criterion, rng, engine, plus per-strategy keyword
arguments), so callers can build any strategy through one call::

    from repro.testgen import build_generator

    gen = build_generator(
        "combined", model, training_set, criterion=criterion, rng=rng,
        candidate_pool=100,
    )

Out-of-tree strategies can be added with :func:`register_strategy`; the
campaign spec validator uses :func:`available_strategies` so unknown names
fail at load time, not mid-run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coverage.activation import ActivationCriterion
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.testgen.base import TestGenerator
from repro.testgen.combined import CombinedGenerator
from repro.testgen.gradient_gen import GradientTestGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.testgen.random_select import RandomSelector
from repro.testgen.selection import TrainingSetSelector
from repro.utils.rng import RngLike

#: factory signature shared by every registered strategy
StrategyFactory = Callable[..., TestGenerator]

_STRATEGIES: Dict[str, StrategyFactory] = {}
_STRATEGY_KNOBS: Dict[str, Dict[str, str]] = {}


def register_strategy(
    name: str,
    factory: Optional[StrategyFactory] = None,
    *,
    knobs: Optional[Dict[str, str]] = None,
):
    """Register a generator factory under ``name`` (usable as a decorator).

    The factory is called as ``factory(model, training_set, criterion=...,
    rng=..., engine=..., **kwargs)`` and must return a
    :class:`~repro.testgen.base.TestGenerator`.  Re-registering a name
    replaces the previous factory (mirrors
    :func:`repro.engine.backend.register_backend`).

    ``knobs`` maps the strategy's constructor keyword arguments onto the
    campaign-spec fields that feed them (e.g. ``{"max_updates":
    "gradient_updates"}``), so declarative drivers learn a strategy's
    tunables from the registry instead of hardcoding them per name.
    """

    def _register(fn: StrategyFactory) -> StrategyFactory:
        _STRATEGIES[name] = fn
        _STRATEGY_KNOBS[name] = dict(knobs or {})
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def available_strategies() -> List[str]:
    """Sorted names of every registered test-generation strategy."""
    return sorted(_STRATEGIES)


def get_strategy(name: str) -> StrategyFactory:
    """Look up a registered strategy factory by name."""
    try:
        return _STRATEGIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {available_strategies()}"
        ) from exc


def strategy_knobs(name: str) -> Dict[str, str]:
    """The named strategy's ``{constructor kwarg: spec field}`` declaration."""
    get_strategy(name)  # raises on unknown names
    return dict(_STRATEGY_KNOBS.get(name, {}))


def build_generator(
    name: str,
    model: Sequential,
    training_set: Optional[Dataset] = None,
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    """Build the named strategy's generator for ``model``.

    ``training_set`` is required by the selection-based strategies and
    ignored by purely synthetic ones; per-strategy keyword arguments
    (``candidate_pool``, ``max_updates``, ...) pass through to the factory.
    """
    return get_strategy(name)(
        model, training_set, criterion=criterion, rng=rng, engine=engine, **kwargs
    )


def _require_dataset(name: str, training_set: Optional[Dataset]) -> Dataset:
    if training_set is None:
        raise ValueError(f"strategy {name!r} requires a training set")
    return training_set


@register_strategy(
    "combined",
    knobs={"candidate_pool": "candidate_pool", "max_updates": "gradient_updates"},
)
def _combined(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return CombinedGenerator(
        model,
        _require_dataset("combined", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register_strategy("selection", knobs={"candidate_pool": "candidate_pool"})
def _selection(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return TrainingSetSelector(
        model,
        _require_dataset("selection", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register_strategy("gradient", knobs={"max_updates": "gradient_updates"})
def _gradient(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    # purely synthetic: the training set (if any) is not consulted
    return GradientTestGenerator(
        model, criterion=criterion, rng=rng, engine=engine, **kwargs  # type: ignore[arg-type]
    )


@register_strategy("neuron", knobs={"candidate_pool": "candidate_pool"})
def _neuron(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    # the neuron-coverage baseline tracks neurons, not parameters; the
    # parameter criterion only affects how the resulting package is audited
    return NeuronCoverageSelector(
        model,
        _require_dataset("neuron", training_set),
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register_strategy("random")
def _random(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return RandomSelector(
        model,
        _require_dataset("random", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


__all__ = [
    "StrategyFactory",
    "available_strategies",
    "build_generator",
    "get_strategy",
    "register_strategy",
    "strategy_knobs",
]
