"""Deprecated shim: the strategy registry moved to :mod:`repro.registry`.

This module was the first name-based registry in the library (PR 4).  The
cross-subsystem registry (``repro.registry``, ``strategies`` namespace)
absorbed it; the builtin strategy factories now live in
:mod:`repro.testgen.strategies`.  Every function here still works but emits
a :class:`DeprecationWarning` pointing at its replacement:

==========================  =============================================
``register_strategy(n, f)``  ``repro.registry.register("strategies", n, f)``
``available_strategies()``   ``repro.registry.names("strategies")``
``get_strategy(n)``          ``repro.registry.get("strategies", n)``
``strategy_knobs(n)``        ``repro.registry.knobs("strategies", n)``
``build_generator(...)``     ``repro.testgen.build_generator(...)``
==========================  =============================================
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

import repro.registry as _registry
from repro.testgen.strategies import StrategyFactory, build_generator as _build_generator

__all__ = [
    "StrategyFactory",
    "available_strategies",
    "build_generator",
    "get_strategy",
    "register_strategy",
    "strategy_knobs",
]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.testgen.registry.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def register_strategy(
    name: str,
    factory: Optional[StrategyFactory] = None,
    *,
    knobs: Optional[Dict[str, str]] = None,
):
    """Deprecated alias of ``repro.registry.register("strategies", ...)``."""
    _warn("register_strategy", 'repro.registry.register("strategies", ...)')
    return _registry.register("strategies", name, factory, knobs=knobs)


def available_strategies() -> List[str]:
    """Deprecated alias of ``repro.registry.names("strategies")``."""
    _warn("available_strategies", 'repro.registry.names("strategies")')
    return _registry.names("strategies")


def get_strategy(name: str) -> StrategyFactory:
    """Deprecated alias of ``repro.registry.get("strategies", name)``."""
    _warn("get_strategy", 'repro.registry.get("strategies", name)')
    return _registry.get("strategies", name)  # type: ignore[return-value]


def strategy_knobs(name: str) -> Dict[str, str]:
    """Deprecated alias of ``repro.registry.knobs("strategies", name)``."""
    _warn("strategy_knobs", 'repro.registry.knobs("strategies", name)')
    return _registry.knobs("strategies", name)  # type: ignore[return-value]


def build_generator(*args: object, **kwargs: object):
    """Deprecated alias of :func:`repro.testgen.strategies.build_generator`."""
    _warn("build_generator", "repro.testgen.build_generator")
    return _build_generator(*args, **kwargs)  # type: ignore[arg-type]
