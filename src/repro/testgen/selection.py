"""Algorithm 1 — greedy selection of functional tests from the training set.

Each iteration picks the training sample with the largest marginal validation
coverage gain ``VC(X + s) − VC(X)`` (Eq. 7) and adds it to the validation set,
until the budget ``Nt`` is exhausted.  With an
:class:`~repro.coverage.parameter_coverage.ActivationMaskCache` the per-sample
gradients are computed exactly once, and — because the cache stores masks
*packed* — each greedy iteration is one ``popcount(candidate & ~covered)``
sweep over the pool's uint64 words: integer arithmetic, so selection order
(including argmax tie-breaks) is byte-identical to the dense implementation
at 1/8 the memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.parameter_coverage import ActivationMaskCache, CoverageTracker
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator

logger = get_logger("testgen.selection")


class TrainingSetSelector(TestGenerator):
    """Greedy coverage-maximising selection from the training set (Algorithm 1).

    Parameters
    ----------
    model: the trained (vendor-side) model.
    training_set: the training dataset (or any candidate dataset) to select from.
    criterion: activation criterion; defaults to the model-appropriate one.
    candidate_pool: optionally subsample the training set to this many
        candidates before the greedy loop (the paper scans the full set; a
        pool bounds the number of backward passes on CPU).
    rng: randomness used only for candidate-pool subsampling and tie breaks.
    memory_budget_bytes: optional cap on the transient dense gradient buffers
        used while the mask cache is built (see ``ActivationMaskCache``).
    """

    method_name = "training-selection"

    def __init__(
        self,
        model: Sequential,
        training_set: Dataset,
        criterion: Optional[ActivationCriterion] = None,
        candidate_pool: Optional[int] = None,
        rng: RngLike = None,
        engine: Optional[Engine] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(model, criterion or default_criterion_for(model), engine)
        if len(training_set) == 0:
            raise ValueError("training set is empty")
        self.training_set = training_set
        self.candidate_pool = candidate_pool
        self.memory_budget_bytes = memory_budget_bytes
        self._rng = as_generator(rng)
        self._cache: Optional[ActivationMaskCache] = None
        self._pool_indices: Optional[np.ndarray] = None

    # -- candidate pool -----------------------------------------------------
    def _ensure_cache(self) -> ActivationMaskCache:
        if self._cache is None:
            n = len(self.training_set)
            if self.candidate_pool is not None and self.candidate_pool < n:
                idx = self._rng.choice(n, size=self.candidate_pool, replace=False)
            else:
                idx = np.arange(n)
            self._pool_indices = idx
            images = self.training_set.images[idx]
            logger.info(
                "building activation-mask cache for %d candidates", images.shape[0]
            )
            self._cache = ActivationMaskCache(
                self.model,
                images,
                self.criterion,
                engine=self.engine,
                memory_budget_bytes=self.memory_budget_bytes,
            )
        return self._cache

    @property
    def pool_size(self) -> int:
        """Number of candidates the greedy loop scans."""
        return len(self._ensure_cache())

    # -- generation -----------------------------------------------------------
    def generate(self, num_tests: int) -> GenerationResult:
        """Run Algorithm 1 for a budget of ``num_tests`` functional tests.

        If the budget exceeds the candidate pool, all candidates are selected
        (in greedy order) and the result simply contains fewer tests.
        """
        if num_tests <= 0:
            raise ValueError("num_tests must be positive")
        cache = self._ensure_cache()
        tracker = CoverageTracker(self.model, self.criterion)

        selected: list[int] = []
        history: list[float] = []
        gains: list[float] = []
        available = np.ones(len(cache), dtype=bool)

        budget = min(num_tests, len(cache))
        for _ in range(budget):
            best, _gain = cache.best_candidate(tracker.covered_map, available)
            gain = tracker.add_mask(cache.packed_mask(best))
            available[best] = False
            selected.append(best)
            gains.append(gain)
            history.append(tracker.coverage)

        tests = cache.images[selected]
        assert self._pool_indices is not None
        return GenerationResult(
            tests=tests,
            coverage_history=history,
            gains=gains,
            sources=["training"] * len(selected),
            dataset_indices=self._pool_indices[selected],
            method=self.method_name,
        )

    def selected_dataset_indices(self, result: GenerationResult) -> np.ndarray:
        """Map a result's tests back to indices in the original training set.

        Results record their dataset indices at selection time
        (:attr:`GenerationResult.dataset_indices`), which is the only
        duplicate-safe provenance record.  The deprecated pixel-equality
        rematch fallback for index-less legacy results was removed: it was
        O(T·N·P) and silently returned the *first* matching index for
        duplicate training images.  Regenerate legacy results to obtain
        recorded indices.
        """
        if result.dataset_indices is None:
            raise ValueError(
                "result has no recorded dataset_indices; the pixel-equality "
                "rematch fallback was removed (it was ambiguous for duplicate "
                "training images) — regenerate the result to record indices "
                "at selection time"
            )
        return result.dataset_indices.copy()


__all__ = ["TrainingSetSelector"]
