"""Builtin test-generation strategies, registered with :mod:`repro.registry`.

Declarative drivers (:mod:`repro.campaign`, :class:`repro.api.Session`)
reference generators by name, so the mapping from name to
:class:`~repro.testgen.base.TestGenerator` construction lives in the
``strategies`` namespace of the cross-subsystem registry rather than being
re-hardcoded by every driver.  Each factory normalises the shared
construction surface (model, training set, criterion, rng, engine, plus
per-strategy keyword arguments), so callers can build any strategy through
one call::

    from repro.testgen import build_generator

    gen = build_generator(
        "combined", model, training_set, criterion=criterion, rng=rng,
        candidate_pool=100,
    )

Out-of-tree strategies register with ``repro.registry.register("strategies",
name, factory, knobs=...)``; declarative spec validators use
``repro.registry.names("strategies")`` so unknown names fail at load time,
not mid-run.  The knob declaration maps a strategy's constructor keyword
arguments onto the campaign-spec / release-request fields that feed them
(e.g. ``{"max_updates": "gradient_updates"}``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.coverage.activation import ActivationCriterion
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.nn.model import Sequential
from repro.registry import register, registry
from repro.testgen.base import TestGenerator
from repro.testgen.combined import CombinedGenerator
from repro.testgen.gradient_gen import GradientTestGenerator
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.testgen.random_select import RandomSelector
from repro.testgen.selection import TrainingSetSelector
from repro.utils.rng import RngLike

#: factory signature shared by every registered strategy
StrategyFactory = Callable[..., TestGenerator]


def build_generator(
    name: str,
    model: Sequential,
    training_set: Optional[Dataset] = None,
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    """Build the named strategy's generator for ``model``.

    ``training_set`` is required by the selection-based strategies and
    ignored by purely synthetic ones; per-strategy keyword arguments
    (``candidate_pool``, ``max_updates``, ...) pass through to the factory.
    """
    factory = registry.get("strategies", name)
    return factory(
        model, training_set, criterion=criterion, rng=rng, engine=engine, **kwargs
    )


def _require_dataset(name: str, training_set: Optional[Dataset]) -> Dataset:
    if training_set is None:
        raise ValueError(f"strategy {name!r} requires a training set")
    return training_set


@register(
    "strategies",
    "combined",
    knobs={"candidate_pool": "candidate_pool", "max_updates": "gradient_updates"},
    summary="Algorithm 1 selection + Algorithm 2 gradient generation (the paper's method)",
)
def _combined(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return CombinedGenerator(
        model,
        _require_dataset("combined", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register(
    "strategies",
    "selection",
    knobs={"candidate_pool": "candidate_pool"},
    summary="greedy training-set selection for parameter coverage (Algorithm 1)",
)
def _selection(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return TrainingSetSelector(
        model,
        _require_dataset("selection", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register(
    "strategies",
    "gradient",
    knobs={"max_updates": "gradient_updates"},
    summary="synthetic gradient-descent test generation (Algorithm 2)",
)
def _gradient(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    # purely synthetic: the training set (if any) is not consulted
    return GradientTestGenerator(
        model, criterion=criterion, rng=rng, engine=engine, **kwargs  # type: ignore[arg-type]
    )


@register(
    "strategies",
    "neuron",
    knobs={"candidate_pool": "candidate_pool"},
    summary="greedy neuron-coverage selection (the hardware-testing baseline)",
)
def _neuron(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    # the neuron-coverage baseline tracks neurons, not parameters; the
    # parameter criterion only affects how the resulting package is audited
    return NeuronCoverageSelector(
        model,
        _require_dataset("neuron", training_set),
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


@register(
    "strategies",
    "random",
    summary="uniform random training-set selection (control baseline)",
)
def _random(
    model: Sequential,
    training_set: Optional[Dataset],
    criterion: Optional[ActivationCriterion] = None,
    rng: RngLike = None,
    engine: Optional[Engine] = None,
    **kwargs: object,
) -> TestGenerator:
    return RandomSelector(
        model,
        _require_dataset("random", training_set),
        criterion=criterion,
        rng=rng,
        engine=engine,
        **kwargs,  # type: ignore[arg-type]
    )


__all__ = [
    "StrategyFactory",
    "build_generator",
]
