"""Shared utilities: seeded RNG handling, logging and experiment configs."""

from repro.utils.config import (
    CoverageConfig,
    DetectionConfig,
    ExperimentConfig,
    TestGenConfig,
    TrainingConfig,
    env_int,
)
from repro.utils.logging import Timer, enable_console_logging, get_logger, progress
from repro.utils.rng import (
    RngLike,
    as_generator,
    check_probability,
    choice_without_replacement,
    derive_seed,
    spawn,
)

__all__ = [
    "CoverageConfig",
    "DetectionConfig",
    "ExperimentConfig",
    "TestGenConfig",
    "TrainingConfig",
    "env_int",
    "Timer",
    "enable_console_logging",
    "get_logger",
    "progress",
    "RngLike",
    "as_generator",
    "check_probability",
    "choice_without_replacement",
    "derive_seed",
    "spawn",
]
