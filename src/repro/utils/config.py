"""Experiment configuration dataclasses.

These configuration objects gather the knobs of the paper's experiments
(Section V) in one place so examples, tests and benchmarks can share the same
definitions, and so full-size runs only differ from the default scaled runs by
one config object.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]


def toml_loads(text: str) -> Dict[str, object]:
    """Parse TOML via stdlib :mod:`tomllib` (3.11+) or the tomli backport."""
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py<3.11 only
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ModuleNotFoundError as exc:
            raise RuntimeError(
                "TOML files need Python >= 3.11 (tomllib) or the tomli "
                "backport; use a .json file otherwise"
            ) from exc
    return tomllib.loads(text)


def load_table_data(path: PathLike, table: str, kind: str = "file") -> Dict[str, object]:
    """TOML/JSON loading shared by campaign specs and the façade objects.

    Fields live either all inside a ``[table]`` table (self-documenting TOML
    files) or all at the top level — never split across both, or a key typed
    above the table header would silently fall back to its default.
    ``kind`` names the file's role in error messages (``"spec"``,
    ``"config"``, ...).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".toml":
        data = toml_loads(text)
    elif path.suffix == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unsupported {kind} format {path.suffix!r}; use .toml or .json"
        )
    if table in data and isinstance(data[table], dict):
        stray = sorted(set(data) - {table})
        if stray:
            raise ValueError(
                f"{kind} keys {stray} found outside the [{table}] table; "
                "move them inside it"
            )
        data = data[table]
    return data


def env_int(name: str, default: int) -> int:
    """Integer knob from the environment, falling back to ``default``.

    The examples read their expensive knobs (training-set size, epochs,
    candidate pool, trial counts) through this, so the CI examples-smoke job
    can shrink them (``REPRO_EXAMPLE_*``) without forking the scripts.
    """
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        return int(value)
    except ValueError as exc:
        raise ValueError(
            f"environment variable {name} must be an integer, got {value!r}"
        ) from exc


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for training a model from the zoo."""

    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    weight_decay: float = 0.0
    shuffle: bool = True
    early_stop_accuracy: Optional[float] = None
    seed: int = 0

    def validate(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in {"sgd", "momentum", "adam"}:
            raise ValueError(f"unknown optimizer {self.optimizer!r}")


@dataclass(frozen=True)
class CoverageConfig:
    """Parameters of the validation-coverage metric (Section IV-A)."""

    #: activation threshold ε — 0.0 means exact non-zero (ReLU networks);
    #: saturating activations (Tanh/Sigmoid) should use a small positive ε.
    epsilon: float = 0.0
    #: how the vector-valued network output F(x) is scalarised before taking
    #: the parameter gradient: "sum", "max" or "predicted".
    scalarization: str = "sum"
    #: include bias parameters in coverage accounting.
    include_biases: bool = True

    def validate(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.scalarization not in {"sum", "max", "predicted"}:
            raise ValueError(f"unknown scalarization {self.scalarization!r}")


@dataclass(frozen=True)
class TestGenConfig:
    """Parameters of the test generation algorithms (Section IV-B/C/D)."""

    #: maximum number of functional tests Nt.
    max_tests: int = 30
    #: candidate pool size scanned by Algorithm 1 each iteration (the paper
    #: scans the whole training set; a pool bounds the cost on CPU).
    candidate_pool: Optional[int] = None
    #: gradient-descent step size η of Algorithm 2 (Eq. 8).
    step_size: float = 0.1
    #: number of gradient-descent updates T of Algorithm 2.
    max_updates: int = 50
    #: switch policy of the combined method: "adaptive" (paper) compares the
    #: marginal gain of the two algorithms; "fixed:<n>" switches after n tests.
    switch_policy: str = "adaptive"
    seed: int = 0

    def validate(self) -> None:
        if self.max_tests <= 0:
            raise ValueError("max_tests must be positive")
        if self.candidate_pool is not None and self.candidate_pool <= 0:
            raise ValueError("candidate_pool must be positive when given")
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")
        if self.max_updates <= 0:
            raise ValueError("max_updates must be positive")
        if self.switch_policy != "adaptive" and not self.switch_policy.startswith(
            "fixed:"
        ):
            raise ValueError(f"unknown switch_policy {self.switch_policy!r}")


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of the detection-rate experiments (Tables II and III)."""

    #: number of independent perturbation trials per (attack, N) cell.  The
    #: paper uses 10 000; the scaled default keeps CPU runtime reasonable.
    trials: int = 200
    #: test budgets N evaluated (rows of Tables II/III).
    test_budgets: Tuple[int, ...] = (10, 20, 30, 40, 50)
    #: attacks evaluated (columns of Tables II/III).
    attacks: Tuple[str, ...] = ("sba", "gda", "random")
    #: absolute tolerance when comparing IP outputs to reference outputs.
    output_atol: float = 1e-6
    seed: int = 0

    def validate(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if not self.test_budgets:
            raise ValueError("test_budgets must not be empty")
        if any(n <= 0 for n in self.test_budgets):
            raise ValueError("test budgets must be positive")
        known = {"sba", "gda", "random", "bitflip"}
        unknown = set(self.attacks) - known
        if unknown:
            raise ValueError(f"unknown attacks: {sorted(unknown)}")


@dataclass
class ExperimentConfig:
    """Bundle of all configs for one end-to-end experiment run."""

    name: str = "experiment"
    training: TrainingConfig = field(default_factory=TrainingConfig)
    coverage: CoverageConfig = field(default_factory=CoverageConfig)
    testgen: TestGenConfig = field(default_factory=TestGenConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)

    def validate(self) -> None:
        self.training.validate()
        self.coverage.validate()
        self.testgen.validate()
        self.detection.validate()

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


__all__ = [
    "load_table_data",
    "toml_loads",
    "TrainingConfig",
    "CoverageConfig",
    "TestGenConfig",
    "DetectionConfig",
    "ExperimentConfig",
    "env_int",
]
