"""Lightweight logging helpers used across the library.

The library deliberately avoids configuring the root logger; it exposes a
namespaced logger factory plus a couple of helpers for progress reporting in
long-running experiment drivers (training, greedy selection, detection-rate
sweeps).
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")

_LIBRARY_NAMESPACE = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("testgen")`` returns the logger ``repro.testgen``.
    """
    if name is None:
        return logging.getLogger(_LIBRARY_NAMESPACE)
    if name.startswith(_LIBRARY_NAMESPACE):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_NAMESPACE}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the library logger.

    Safe to call multiple times; only one handler is installed.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)


class Timer:
    """Context manager measuring wall-clock time of a block.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


def progress(
    iterable: Iterable[T],
    every: int = 10,
    label: str = "progress",
    logger: Optional[logging.Logger] = None,
) -> Iterator[T]:
    """Yield from ``iterable`` while logging progress every ``every`` items."""
    log = logger or get_logger()
    for i, item in enumerate(iterable):
        if every > 0 and i % every == 0:
            log.debug("%s: item %d", label, i)
        yield item


__all__ = ["get_logger", "enable_console_logging", "Timer", "progress"]
