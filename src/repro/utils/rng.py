"""Seeded random-number-generator helpers.

Every stochastic component in the library (dataset synthesis, weight
initialisation, training shuffles, attack sampling) takes either an integer
seed or a :class:`numpy.random.Generator`.  Centralising the conversion here
keeps experiments reproducible: the same seed always yields the same
generator, and child generators can be spawned deterministically for
independent subsystems.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5EED


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (use the library default seed), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng)!r}")


def spawn(rng: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Spawn ``n`` independent child generators from ``rng``.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so they are statistically independent and reproducible.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    base = as_generator(rng)
    seeds = base.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike, salt: int = 0) -> int:
    """Derive a deterministic integer seed from ``rng`` and ``salt``."""
    base = as_generator(rng)
    return int(base.integers(0, 2**31 - 1)) ^ (salt * 0x9E3779B1 & 0x7FFFFFFF)


def check_probability(p: float, name: str = "p") -> float:
    """Validate that ``p`` is a probability in ``[0, 1]`` and return it."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return float(p)


def choice_without_replacement(
    rng: RngLike, n: int, k: int
) -> np.ndarray:
    """Choose ``k`` distinct indices from ``range(n)``.

    Raises ``ValueError`` when ``k > n`` instead of silently clamping, so
    callers notice undersized pools.
    """
    if k > n:
        raise ValueError(f"cannot choose {k} items from a pool of {n}")
    gen = as_generator(rng)
    return gen.choice(n, size=k, replace=False)


__all__ = [
    "RngLike",
    "as_generator",
    "spawn",
    "derive_seed",
    "check_probability",
    "choice_without_replacement",
]
