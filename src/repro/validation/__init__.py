"""The vendor/user functional-validation scheme (Fig. 1) and the
detection-rate experiment harness (Tables II/III)."""

from repro.validation.detection import (
    ATTACK_NAMES,
    DetectionCell,
    DetectionExperiment,
    DetectionTable,
    default_attack_factories,
    run_detection_experiment,
    stack_package_prefixes,
)
from repro.validation.package import DEFAULT_OUTPUT_ATOL, FORMAT_VERSION, ValidationPackage
from repro.validation.sequential import (
    SequentialReport,
    clean_floor,
    decide_from_mismatches,
    entropy_order,
    query_order,
)
from repro.validation.user import (
    BlackBoxIP,
    IPUser,
    ValidationReport,
    report_from_outputs,
    validate_ip,
)
from repro.validation.vendor import IPVendor

__all__ = [
    "ATTACK_NAMES",
    "stack_package_prefixes",
    "DetectionCell",
    "DetectionExperiment",
    "DetectionTable",
    "default_attack_factories",
    "run_detection_experiment",
    "DEFAULT_OUTPUT_ATOL",
    "FORMAT_VERSION",
    "SequentialReport",
    "clean_floor",
    "ValidationPackage",
    "decide_from_mismatches",
    "entropy_order",
    "query_order",
    "BlackBoxIP",
    "IPUser",
    "ValidationReport",
    "report_from_outputs",
    "validate_ip",
    "IPVendor",
]
