"""Detection-rate experiments (Tables II and III).

For a given victim model, a set of functional-test packages (one per
generation method / budget) and a set of attacks, the experiment repeatedly:

1. perturbs a fresh copy of the victim with the attack,
2. replays each package against the perturbed copy, and
3. records whether the perturbation was detected (any output mismatch).

The detection rate of a (package, attack) cell is the fraction of perturbation
trials that were detected — exactly the quantity reported in Tables II/III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import ParameterAttack
from repro.data.datasets import Dataset
from repro.engine import Engine
from repro.engine.backend import BackendSpec, get_backend
from repro.nn.model import Sequential
from repro.utils.config import DetectionConfig
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, as_generator, spawn
from repro.validation.package import ValidationPackage
from repro.validation.user import validate_ip

logger = get_logger("validation.detection")

AttackFactory = Callable[[np.random.Generator], ParameterAttack]

#: every attack family the library implements, in table-column order
ATTACK_NAMES = ("sba", "gda", "random", "bitflip")


def stack_package_prefixes(
    packages: Dict[str, ValidationPackage], budget: int
) -> Tuple[List[str], np.ndarray, np.ndarray, Dict[str, int]]:
    """Stack the first ``budget`` tests of every package into one batch.

    Returns ``(methods, stacked_tests, expected_outputs, offsets)`` where
    ``offsets[m]`` is the start of method ``m``'s slice in the stacked batch.
    Replaying the stacked batch once per perturbed model (one engine dispatch)
    and slicing per method/budget afterwards is the Tables II/III inner loop;
    the campaign runner shares this exact stacking.
    """
    if not packages:
        raise ValueError("at least one validation package is required")
    methods = list(packages)
    for method, pkg in packages.items():
        if pkg.num_tests < budget:
            raise ValueError(
                f"package for method {method!r} has only {pkg.num_tests} tests "
                f"but the stacking budget is {budget}"
            )
    stacked_tests = np.concatenate(
        [packages[m].tests[:budget] for m in methods], axis=0
    )
    expected = np.concatenate(
        [packages[m].expected_outputs[:budget] for m in methods], axis=0
    )
    offsets = {m: i * budget for i, m in enumerate(methods)}
    return methods, stacked_tests, expected, offsets


@dataclass
class DetectionCell:
    """One cell of a detection-rate table."""

    method: str
    attack: str
    num_tests: int
    trials: int
    detections: int

    @property
    def detection_rate(self) -> float:
        if self.trials == 0:
            raise ValueError("cell has no trials")
        return self.detections / self.trials


@dataclass
class DetectionTable:
    """Collection of detection cells, indexable by (method, attack, budget)."""

    cells: List[DetectionCell] = field(default_factory=list)

    def add(self, cell: DetectionCell) -> None:
        self.cells.append(cell)

    def rate(self, method: str, attack: str, num_tests: int) -> float:
        for cell in self.cells:
            if (
                cell.method == method
                and cell.attack == attack
                and cell.num_tests == num_tests
            ):
                return cell.detection_rate
        raise KeyError(f"no cell for ({method!r}, {attack!r}, N={num_tests})")

    def methods(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.method not in seen:
                seen.append(cell.method)
        return seen

    def attacks(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.attack not in seen:
                seen.append(cell.attack)
        return seen

    def budgets(self) -> List[int]:
        return sorted({cell.num_tests for cell in self.cells})

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat list of dict rows (for CSV/markdown rendering)."""
        return [
            {
                "method": c.method,
                "attack": c.attack,
                "num_tests": c.num_tests,
                "trials": c.trials,
                "detections": c.detections,
                "detection_rate": c.detection_rate,
            }
            for c in self.cells
        ]


def available_attacks() -> List[str]:
    """Every attack family in the registry, builtins first in table order."""
    from repro.registry import registry

    names = list(ATTACK_NAMES)
    names.extend(n for n in registry.names("attacks") if n not in names)
    return names


def default_attack_factories(
    reference_inputs: np.ndarray,
    sba_magnitude: float = 10.0,
    gda_parameters: int = 20,
    random_parameters: int = 10,
    random_relative_std: float = 2.0,
    **extra_settings: object,
) -> Dict[str, AttackFactory]:
    """The paper's three attacks (plus the bit-flip extension) as factories.

    Each factory takes a per-trial RNG so that every perturbation trial draws
    an independent fault, matching the "implement each kind of parameter
    perturbation 10000 times" protocol of Section V-C.

    Attack construction resolves through the ``attacks`` namespace of
    :mod:`repro.registry`: every registered family contributes one factory,
    with its keyword arguments drawn from this function's settings according
    to the entry's knob declaration (``sba`` ← ``sba_magnitude``, ``gda`` ←
    ``gda_parameters``, ``random`` ← ``random_parameters`` /
    ``random_relative_std``).  Settings for third-party attacks pass through
    ``extra_settings`` under the field names their knobs declare.
    """
    from repro.registry import registry

    reference_inputs = np.asarray(reference_inputs, dtype=np.float64)
    if reference_inputs.shape[0] == 0:
        raise ValueError("reference_inputs must be a non-empty batch")

    settings: Dict[str, object] = {
        "sba_magnitude": sba_magnitude,
        "gda_parameters": gda_parameters,
        "random_parameters": random_parameters,
        "random_relative_std": random_relative_std,
    }
    settings.update(extra_settings)

    factories: Dict[str, AttackFactory] = {}
    for name in available_attacks():
        entry_factory = registry.get("attacks", name)
        kwargs = {
            kwarg: settings[field]  # type: ignore[index]
            for kwarg, field in registry.knobs("attacks", name).items()
            if field in settings
        }

        def factory(
            rng: np.random.Generator,
            _build: Callable[..., object] = entry_factory,
            _kwargs: Dict[str, object] = kwargs,
        ) -> ParameterAttack:
            return _build(reference_inputs, rng=rng, **_kwargs)  # type: ignore[return-value]

        factories[name] = factory
    return factories


class DetectionExperiment:
    """Detection-rate sweep over methods × attacks × test budgets.

    Parameters
    ----------
    model: the untampered victim model (the vendor's reference copy).
    packages: mapping from method name to a validation package holding *at
        least* ``max(test_budgets)`` tests generated by that method; budget
        sweeps reuse prefixes of each package.
    attack_factories: mapping from attack name to a factory building a fresh
        attack from a per-trial RNG; see :func:`default_attack_factories`.
    config: trial counts, budgets, attack list, tolerance and seed.
    backend: engine backend the trial replays run on (name, instance or
        class).  Backends advertising a positive ``model_axis_capacity``
        (the ``model_axis`` backend) evaluate that many perturbed copies per
        fused dispatch instead of one engine pass per trial; detection
        counts are bit-identical either way.
    """

    def __init__(
        self,
        model: Sequential,
        packages: Dict[str, ValidationPackage],
        attack_factories: Dict[str, AttackFactory],
        config: Optional[DetectionConfig] = None,
        backend: BackendSpec = "numpy",
    ) -> None:
        if not packages:
            raise ValueError("at least one validation package is required")
        self.backend = get_backend(backend)
        self.model = model
        self.packages = dict(packages)
        self.attack_factories = dict(attack_factories)
        self.config = config or DetectionConfig()
        self.config.validate()
        missing = set(self.config.attacks) - set(self.attack_factories)
        if missing:
            raise ValueError(f"no attack factory for: {sorted(missing)}")
        max_budget = max(self.config.test_budgets)
        for method, pkg in self.packages.items():
            if pkg.num_tests < max_budget:
                raise ValueError(
                    f"package for method {method!r} has only {pkg.num_tests} tests "
                    f"but the largest budget is {max_budget}"
                )

    def run(self) -> DetectionTable:
        """Run every (method, attack, budget) cell and return the table.

        The same sequence of perturbed models is reused across methods and
        budgets within an attack (paired trials), so differences between
        methods are not washed out by attack sampling noise.

        Per trial, the tests of *all* packages are replayed with a single
        stacked batched forward pass over the perturbed copy (one engine
        dispatch instead of one ``predict`` per method); smaller budgets are
        derived from the same outputs via prefix slicing.  When the backend
        advertises a model-axis capacity, that many perturbed copies share
        one fused dispatch per group instead of one engine pass each.
        """
        cfg = self.config
        table = DetectionTable()
        attack_rngs = spawn(cfg.seed, len(cfg.attacks))
        max_budget = max(cfg.test_budgets)

        # stack every package's test prefix once; per-method slices of the
        # stacked batch are recovered from the offsets below
        methods, stacked_tests, expected, offsets = stack_package_prefixes(
            self.packages, max_budget
        )

        capacity = self.backend.model_axis_capacity
        group_size = capacity if capacity > 0 else 1
        # perturbed copies are each used for exactly one batch, so engine
        # memo caches are disabled throughout
        stacked_engine = (
            Engine(self.model, backend=self.backend, cache=False)
            if capacity > 0
            else None
        )

        for attack_name, attack_rng in zip(cfg.attacks, attack_rngs):
            factory = self.attack_factories[attack_name]
            trial_rngs = spawn(attack_rng, cfg.trials)
            logger.info(
                "running %d %s perturbation trials", cfg.trials, attack_name
            )

            # detections[method][budget] -> count
            detections: Dict[str, Dict[int, int]] = {
                method: {n: 0 for n in cfg.test_budgets} for method in self.packages
            }
            for start in range(0, cfg.trials, group_size):
                group = trial_rngs[start : start + group_size]
                copies = [factory(rng).apply(self.model).model for rng in group]
                if stacked_engine is not None:
                    observed_group = stacked_engine.stacked_forward(
                        copies, stacked_tests
                    )
                else:
                    observed_group = [
                        Engine(
                            copy, backend=self.backend, cache=False
                        ).forward(stacked_tests)
                        for copy in copies
                    ]
                for observed in observed_group:
                    deviations = np.abs(observed - expected).max(axis=1)
                    for method in methods:
                        lo = offsets[method]
                        for n in cfg.test_budgets:
                            if np.any(deviations[lo : lo + n] > cfg.output_atol):
                                detections[method][n] += 1

            for method in self.packages:
                for n in cfg.test_budgets:
                    table.add(
                        DetectionCell(
                            method=method,
                            attack=attack_name,
                            num_tests=n,
                            trials=cfg.trials,
                            detections=detections[method][n],
                        )
                    )
        return table


def run_detection_experiment(
    model: Sequential,
    packages: Dict[str, ValidationPackage],
    reference_inputs: np.ndarray,
    config: Optional[DetectionConfig] = None,
    backend: BackendSpec = "numpy",
    **factory_kwargs: object,
) -> DetectionTable:
    """Convenience wrapper with the paper's default attack set."""
    factories = default_attack_factories(reference_inputs, **factory_kwargs)  # type: ignore[arg-type]
    return DetectionExperiment(
        model, packages, factories, config, backend=backend
    ).run()


__all__ = [
    "ATTACK_NAMES",
    "available_attacks",
    "DetectionCell",
    "DetectionTable",
    "DetectionExperiment",
    "default_attack_factories",
    "run_detection_experiment",
    "stack_package_prefixes",
]
