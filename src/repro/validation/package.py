"""The validation package an IP vendor releases alongside the DNN IP.

Figure 1 of the paper: the vendor generates functional tests ``X``, computes
the reference outputs ``Y = F(X)`` on the untampered model, and ships
``(X, Y)`` (encrypted/signed in practice) together with the black-box IP.  The
user replays ``X`` against the received IP and compares the observed outputs
``Y'`` against ``Y``; any mismatch means the IP was perturbed.

:class:`ValidationPackage` captures exactly that artefact, including an
integrity digest over its own contents (standing in for the
encryption/signing the paper assumes) and serialisation to ``.npz`` so vendor
and user can genuinely be separate processes.

Since format version 2 a package may also carry the tests' *packed*
activation masks (:class:`~repro.coverage.bitmap.MaskMatrix`, one bit per
model parameter at 1/8 the dense bytes), so coverage composition can be
audited without white-box access to the vendor's model.  Loading is backward
compatible: format-1 packages (no masks, or legacy dense-boolean masks) load
transparently — dense masks are packed on the way in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.coverage.bitmap import MaskMatrix, pack_bool

PathLike = Union[str, Path]

#: default absolute tolerance when comparing observed and reference logits.
DEFAULT_OUTPUT_ATOL = 1e-6

#: on-disk format version written by :meth:`ValidationPackage.save`.
#: v1: tests + outputs only (dense-boolean ``coverage_masks`` in some
#: pre-release builds); v2: optional packed ``coverage_words`` + ``coverage_bits``;
#: v3: optional per-test ``discrimination`` scores for sequential verification.
#: ``save`` is content-driven: a package that carries no v3 payload is still
#: written as format 2 so older readers keep working.
FORMAT_VERSION = 3


def _digest_arrays(
    tests: np.ndarray,
    outputs: np.ndarray,
    coverage_masks: Optional[MaskMatrix] = None,
    discrimination: Optional[np.ndarray] = None,
) -> str:
    """SHA-256 digest binding the package payload together.

    Covers ``(X, Y)`` and, when present, the packed coverage masks and the
    discrimination scores — every byte the package ships must be
    authenticated, or a man-in-the-middle could rewrite the auditable
    coverage record (or reorder the verifier's query schedule) while the
    digest still verifies.  v1 packages never carried masks, so their stored
    digests (tests + outputs only) keep verifying under this definition.
    """
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(np.round(tests, 12)).tobytes())
    hasher.update(np.ascontiguousarray(np.round(outputs, 12)).tobytes())
    if coverage_masks is not None:
        hasher.update(str(coverage_masks.nbits).encode("ascii"))
        hasher.update(np.ascontiguousarray(coverage_masks.words).tobytes())
    if discrimination is not None:
        hasher.update(b"discrimination")
        hasher.update(np.ascontiguousarray(np.round(discrimination, 12)).tobytes())
    return hasher.hexdigest()


@dataclass
class ValidationPackage:
    """Functional tests plus their reference outputs.

    Attributes
    ----------
    tests: the functional test inputs, shape ``(N, *input_shape)``.
    expected_outputs: reference logits ``Y = F(X)`` from the untampered model,
        shape ``(N, num_classes)``.
    expected_labels: reference predicted classes (redundant with the logits
        but convenient for label-only comparison modes).
    output_atol: tolerance used when comparing observed logits against the
        reference (accounts for benign numeric differences across platforms).
    coverage_masks: optional packed per-test activation masks
        (:class:`~repro.coverage.bitmap.MaskMatrix`, one row per test, one
        bit per vendor-model parameter).
    metadata: free-form information (model name, generator, coverage
        achieved, creation settings).
    discrimination: optional per-test discriminative-power scores (format
        v3) — the fraction of the vendor's surrogate attack suite each test
        detected at release time.  Sequential verification replays tests in
        descending score order so the most telling queries are spent first.
    """

    tests: np.ndarray
    expected_outputs: np.ndarray
    expected_labels: np.ndarray = field(default=None)  # type: ignore[assignment]
    output_atol: float = DEFAULT_OUTPUT_ATOL
    coverage_masks: Optional[MaskMatrix] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    discrimination: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.tests = np.asarray(self.tests, dtype=np.float64)
        self.expected_outputs = np.asarray(self.expected_outputs, dtype=np.float64)
        if self.tests.shape[0] == 0:
            raise ValueError("a validation package must contain at least one test")
        if self.tests.shape[0] != self.expected_outputs.shape[0]:
            raise ValueError(
                f"test count {self.tests.shape[0]} does not match output count "
                f"{self.expected_outputs.shape[0]}"
            )
        if self.expected_outputs.ndim != 2:
            raise ValueError("expected_outputs must be a 2-D (N, num_classes) array")
        if self.output_atol < 0:
            raise ValueError("output_atol must be non-negative")
        if self.expected_labels is None:
            self.expected_labels = np.argmax(self.expected_outputs, axis=1)
        else:
            self.expected_labels = np.asarray(self.expected_labels, dtype=np.int64)
            if self.expected_labels.shape[0] != self.tests.shape[0]:
                raise ValueError("expected_labels length does not match test count")
        if self.coverage_masks is not None:
            if not isinstance(self.coverage_masks, MaskMatrix):
                # accept a dense boolean matrix and pack it
                self.coverage_masks = MaskMatrix.from_dense(
                    np.asarray(self.coverage_masks, dtype=bool)
                )
            if len(self.coverage_masks) != self.tests.shape[0]:
                raise ValueError(
                    f"coverage_masks has {len(self.coverage_masks)} rows, "
                    f"expected one per test ({self.tests.shape[0]})"
                )
        if self.discrimination is not None:
            self.discrimination = np.asarray(self.discrimination, dtype=np.float64)
            if self.discrimination.ndim != 1:
                raise ValueError("discrimination must be a 1-D per-test score array")
            if self.discrimination.shape[0] != self.tests.shape[0]:
                raise ValueError(
                    f"discrimination has {self.discrimination.shape[0]} scores, "
                    f"expected one per test ({self.tests.shape[0]})"
                )

    # -- properties --------------------------------------------------------
    @property
    def num_tests(self) -> int:
        return int(self.tests.shape[0])

    def digest(self) -> str:
        """Integrity digest over the full payload (tests, outputs, masks, scores)."""
        return _digest_arrays(
            self.tests,
            self.expected_outputs,
            self.coverage_masks,
            self.discrimination,
        )

    def coverage_fraction(self) -> Optional[float]:
        """VC(X) recomputed from the stored packed masks (None without masks)."""
        if self.coverage_masks is None:
            return None
        return self.coverage_masks.union().fraction

    def subset(self, n: int) -> "ValidationPackage":
        """Package restricted to the first ``n`` tests (budget sweeps)."""
        if n <= 0 or n > self.num_tests:
            raise ValueError(f"n must be in [1, {self.num_tests}], got {n}")
        return ValidationPackage(
            tests=self.tests[:n].copy(),
            expected_outputs=self.expected_outputs[:n].copy(),
            expected_labels=self.expected_labels[:n].copy(),
            output_atol=self.output_atol,
            coverage_masks=(
                self.coverage_masks.take(range(n))
                if self.coverage_masks is not None
                else None
            ),
            metadata=dict(self.metadata),
            discrimination=(
                self.discrimination[:n].copy()
                if self.discrimination is not None
                else None
            ),
        )

    # -- serialisation -------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Serialise the package (with its digest) to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # content-driven version: only stamp v3 when a v3 payload is present,
        # so packages without discrimination scores stay readable by v2 builds
        version = FORMAT_VERSION if self.discrimination is not None else 2
        meta: Dict[str, object] = {
            "format": version,
            "output_atol": self.output_atol,
            "digest": self.digest(),
            "metadata": self.metadata,
        }
        arrays: Dict[str, np.ndarray] = {
            "tests": self.tests,
            "expected_outputs": self.expected_outputs,
            "expected_labels": self.expected_labels,
        }
        if self.coverage_masks is not None:
            meta["coverage_bits"] = int(self.coverage_masks.nbits)
            arrays["coverage_words"] = self.coverage_masks.words
        if self.discrimination is not None:
            arrays["discrimination"] = self.discrimination
        np.savez(
            path,
            __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            **arrays,
        )
        return path

    @classmethod
    def load(cls, path: PathLike, verify_digest: bool = True) -> "ValidationPackage":
        """Load a package, verifying its integrity digest by default.

        Reads every on-disk format: v3 (per-test ``discrimination`` scores),
        v2 (packed ``coverage_words``), v1 without masks, and v1 with legacy
        dense-boolean ``coverage_masks`` (packed transparently on load).
        Formats newer than this build knows are refused with an explicit
        version error rather than a missing-key crash.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"validation package not found: {path}")
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            version = int(meta.get("format", 1))
            if version > FORMAT_VERSION:
                raise ValueError(
                    f"validation package {path} has format {version}, but this "
                    f"build only reads formats up to {FORMAT_VERSION} — upgrade "
                    "repro to a release that understands this package format"
                )
            coverage_masks: Optional[MaskMatrix] = None
            if "coverage_words" in data.files:
                coverage_masks = MaskMatrix(
                    int(meta["coverage_bits"]), data["coverage_words"]
                )
            elif "coverage_masks" in data.files:  # legacy v1 dense storage
                dense = np.asarray(data["coverage_masks"], dtype=bool)
                coverage_masks = MaskMatrix(dense.shape[1], pack_bool(dense))
            discrimination: Optional[np.ndarray] = None
            if "discrimination" in data.files:
                discrimination = np.asarray(data["discrimination"], dtype=np.float64)
            package = cls(
                tests=data["tests"],
                expected_outputs=data["expected_outputs"],
                expected_labels=data["expected_labels"],
                output_atol=float(meta["output_atol"]),
                coverage_masks=coverage_masks,
                metadata=dict(meta.get("metadata", {})),
                discrimination=discrimination,
            )
        if verify_digest:
            # v1 writers digested tests+outputs only (masks, if any, were a
            # pre-release extra the digest never covered); v2 digests span
            # the full payload including the packed masks
            expected = (
                _digest_arrays(package.tests, package.expected_outputs)
                if version < 2
                else package.digest()
            )
            if expected != meta.get("digest"):
                raise ValueError(
                    f"validation package {path} failed its integrity check: "
                    "contents were modified after creation"
                )
        return package


__all__ = ["ValidationPackage", "DEFAULT_OUTPUT_ATOL", "FORMAT_VERSION"]
