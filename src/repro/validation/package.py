"""The validation package an IP vendor releases alongside the DNN IP.

Figure 1 of the paper: the vendor generates functional tests ``X``, computes
the reference outputs ``Y = F(X)`` on the untampered model, and ships
``(X, Y)`` (encrypted/signed in practice) together with the black-box IP.  The
user replays ``X`` against the received IP and compares the observed outputs
``Y'`` against ``Y``; any mismatch means the IP was perturbed.

:class:`ValidationPackage` captures exactly that artefact, including an
integrity digest over its own contents (standing in for the
encryption/signing the paper assumes) and serialisation to ``.npz`` so vendor
and user can genuinely be separate processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: default absolute tolerance when comparing observed and reference logits.
DEFAULT_OUTPUT_ATOL = 1e-6


def _digest_arrays(tests: np.ndarray, outputs: np.ndarray) -> str:
    """SHA-256 digest binding the tests to their reference outputs."""
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(np.round(tests, 12)).tobytes())
    hasher.update(np.ascontiguousarray(np.round(outputs, 12)).tobytes())
    return hasher.hexdigest()


@dataclass
class ValidationPackage:
    """Functional tests plus their reference outputs.

    Attributes
    ----------
    tests: the functional test inputs, shape ``(N, *input_shape)``.
    expected_outputs: reference logits ``Y = F(X)`` from the untampered model,
        shape ``(N, num_classes)``.
    expected_labels: reference predicted classes (redundant with the logits
        but convenient for label-only comparison modes).
    output_atol: tolerance used when comparing observed logits against the
        reference (accounts for benign numeric differences across platforms).
    metadata: free-form information (model name, generator, coverage
        achieved, creation settings).
    """

    tests: np.ndarray
    expected_outputs: np.ndarray
    expected_labels: np.ndarray = field(default=None)  # type: ignore[assignment]
    output_atol: float = DEFAULT_OUTPUT_ATOL
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tests = np.asarray(self.tests, dtype=np.float64)
        self.expected_outputs = np.asarray(self.expected_outputs, dtype=np.float64)
        if self.tests.shape[0] == 0:
            raise ValueError("a validation package must contain at least one test")
        if self.tests.shape[0] != self.expected_outputs.shape[0]:
            raise ValueError(
                f"test count {self.tests.shape[0]} does not match output count "
                f"{self.expected_outputs.shape[0]}"
            )
        if self.expected_outputs.ndim != 2:
            raise ValueError("expected_outputs must be a 2-D (N, num_classes) array")
        if self.output_atol < 0:
            raise ValueError("output_atol must be non-negative")
        if self.expected_labels is None:
            self.expected_labels = np.argmax(self.expected_outputs, axis=1)
        else:
            self.expected_labels = np.asarray(self.expected_labels, dtype=np.int64)
            if self.expected_labels.shape[0] != self.tests.shape[0]:
                raise ValueError("expected_labels length does not match test count")

    # -- properties --------------------------------------------------------
    @property
    def num_tests(self) -> int:
        return int(self.tests.shape[0])

    def digest(self) -> str:
        """Integrity digest binding tests and reference outputs together."""
        return _digest_arrays(self.tests, self.expected_outputs)

    def subset(self, n: int) -> "ValidationPackage":
        """Package restricted to the first ``n`` tests (budget sweeps)."""
        if n <= 0 or n > self.num_tests:
            raise ValueError(f"n must be in [1, {self.num_tests}], got {n}")
        return ValidationPackage(
            tests=self.tests[:n].copy(),
            expected_outputs=self.expected_outputs[:n].copy(),
            expected_labels=self.expected_labels[:n].copy(),
            output_atol=self.output_atol,
            metadata=dict(self.metadata),
        )

    # -- serialisation -------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Serialise the package (with its digest) to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "output_atol": self.output_atol,
            "digest": self.digest(),
            "metadata": self.metadata,
        }
        np.savez(
            path,
            tests=self.tests,
            expected_outputs=self.expected_outputs,
            expected_labels=self.expected_labels,
            __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        return path

    @classmethod
    def load(cls, path: PathLike, verify_digest: bool = True) -> "ValidationPackage":
        """Load a package, verifying its integrity digest by default."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"validation package not found: {path}")
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            package = cls(
                tests=data["tests"],
                expected_outputs=data["expected_outputs"],
                expected_labels=data["expected_labels"],
                output_atol=float(meta["output_atol"]),
                metadata=dict(meta.get("metadata", {})),
            )
        if verify_digest and package.digest() != meta.get("digest"):
            raise ValueError(
                f"validation package {path} failed its integrity check: "
                "contents were modified after creation"
            )
        return package


__all__ = ["ValidationPackage", "DEFAULT_OUTPUT_ATOL"]
