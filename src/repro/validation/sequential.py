"""Sequential early-stopping verification — pay per query, stop early.

The paper's user replays the *entire* fingerprint set ``X`` against the
suspect IP.  That is the right baseline when inference is free, but a
production verifier pays per query against a remote black-box endpoint.
This module implements the budget-aware alternative: replay fingerprints
one micro-batch at a time, in order of discriminative power, and run Wald's
sequential probability ratio test (SPRT) on the per-test match/mismatch
stream so a verdict is reached after the fewest possible queries.

Hypotheses.  Under ``H0`` (clean IP) a fingerprint mismatches only through
benign numeric noise beyond ``output_atol`` — probability ``p0`` (tiny,
default 1e-4).  Under ``H1`` (tampered IP) the fingerprint set was selected
for sensitivity, so each test mismatches with probability ``p1`` (default
0.5, a deliberately conservative floor: Tables II/III measure near-1
per-test detection at the paper's operating points).  After each observed
test the log-likelihood ratio moves by ``log(p1/p0)`` on a mismatch or
``log((1-p1)/(1-p0))`` on a match; crossing ``log((1-beta)/alpha)`` accepts
``H1`` (tampered), crossing ``log(beta/(1-alpha))`` accepts ``H0`` (clean).
The tampered side runs as a one-sided CUSUM — the SPRT statistic reflected
at zero — so accumulated clean evidence never masks a later mismatch,
mirroring the full-replay rule where a single mismatch is decisive no
matter how many tests matched before it.
With the defaults a *single* mismatch immediately yields the tampered
verdict — exactly the full-replay rule — while a clean IP is accepted after
roughly seven matching fingerprints instead of the whole set.

Curtailment.  Discrimination scores are *averages* over the vendor's
surrogate attack suite; an individual attack instance can hide behind them
by perturbing only what the low-scoring tests observe (empirically, random
and bit-flip attacks on the CIFAR operating point mismatch exactly the
lowest-discrimination fingerprints).  A pure SPRT would accept "clean"
after the first few high-scoring matches and miss such a late mismatch —
the β error made flesh.  The clean verdict therefore additionally requires
having replayed at least :data:`DEFAULT_CLEAN_FRACTION` of the fingerprint
set (a curtailed sampling plan): the tampered side still exits on the first
mismatch, and the clean side still stops short of full replay, but never so
short that a surrogate-blind attack slips through the pinned scenarios.

Query order.  Format-v3 packages carry per-test ``discrimination`` scores
(mismatch rate against the vendor's surrogate attack suite, measured at
release time); tests are replayed in descending score order.  Legacy
packages fall back to the softmax entropy of the expected logits — tests
whose reference outputs sit near a decision boundary flip first under
parameter perturbation, so high entropy is a query-free proxy for
discriminative power.  Both orderings use a stable sort, so the schedule is
deterministic for a given package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: H0 per-test mismatch probability (clean IP; benign numeric noise only).
DEFAULT_P0 = 1e-4
#: H1 per-test mismatch probability (tampered IP; conservative floor).
DEFAULT_P1 = 0.5
#: default target confidence; alpha = beta = 1 - confidence.
DEFAULT_CONFIDENCE = 0.99
#: clean-side curtailment: accept H0 only after replaying at least this
#: fraction of the fingerprint set (guards against attack instances that
#: mismatch only low-discrimination tests — see the module docstring).
DEFAULT_CLEAN_FRACTION = 0.875

VERDICT_TAMPERED = "tampered"
VERDICT_CLEAN = "clean"

#: ordering provenance labels recorded in :class:`SequentialReport`.
ORDER_DISCRIMINATION = "discrimination"
ORDER_ENTROPY = "entropy"


def sprt_thresholds(alpha: float, beta: float) -> Tuple[float, float]:
    """Wald decision thresholds ``(lower, upper)`` on the log-likelihood ratio.

    ``llr >= upper`` accepts H1 (tampered); ``llr <= lower`` accepts H0
    (clean).  ``alpha`` bounds the false-tampered rate, ``beta`` the
    false-clean rate.
    """
    if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
        raise ValueError(f"alpha and beta must be in (0, 1), got {alpha}, {beta}")
    upper = math.log((1.0 - beta) / alpha)
    lower = math.log(beta / (1.0 - alpha))
    return lower, upper


def llr_increments(p0: float = DEFAULT_P0, p1: float = DEFAULT_P1) -> Tuple[float, float]:
    """Per-observation LLR steps ``(match, mismatch)`` for the SPRT walk."""
    if not 0.0 < p0 < p1 < 1.0:
        raise ValueError(f"need 0 < p0 < p1 < 1, got p0={p0}, p1={p1}")
    match = math.log((1.0 - p1) / (1.0 - p0))
    mismatch = math.log(p1 / p0)
    return match, mismatch


def entropy_order(expected_outputs: np.ndarray) -> np.ndarray:
    """Indices of tests by descending softmax entropy of the reference logits.

    The query-free fallback ordering for packages without stored
    discrimination scores: reference outputs near a decision boundary (high
    entropy) are the most likely to flip under parameter perturbation.
    Stable sort, so ties keep the vendor's original test order.
    """
    logits = np.asarray(expected_outputs, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError("expected_outputs must be a 2-D (N, num_classes) array")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        plogp = np.where(probs > 0.0, probs * np.log(probs), 0.0)
    entropy = -plogp.sum(axis=1)
    # descending entropy; negate rather than reverse to keep the sort stable
    return np.argsort(-entropy, kind="stable")


def query_order(package) -> Tuple[np.ndarray, str]:
    """Replay schedule for a package: ``(indices, order_name)``.

    Uses the package's stored v3 ``discrimination`` scores (descending)
    when present, otherwise the entropy fallback.
    """
    scores = getattr(package, "discrimination", None)
    if scores is not None:
        order = np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
        return order, ORDER_DISCRIMINATION
    return entropy_order(package.expected_outputs), ORDER_ENTROPY


def clean_floor(num_tests: int, clean_fraction: float = DEFAULT_CLEAN_FRACTION) -> int:
    """Minimum replayed fingerprints before a clean verdict may be issued.

    ``ceil(clean_fraction * num_tests)`` — the curtailment guard described
    in the module docstring.  Always at least 1 for a non-empty set.
    """
    if num_tests <= 0:
        return 0
    if not 0.0 < clean_fraction <= 1.0:
        raise ValueError(
            f"clean_fraction must be in (0, 1], got {clean_fraction}"
        )
    return max(1, math.ceil(clean_fraction * num_tests))


def decide_from_mismatches(
    mismatches: Sequence[bool],
    confidence: float = DEFAULT_CONFIDENCE,
    p0: float = DEFAULT_P0,
    p1: float = DEFAULT_P1,
    budget: Optional[int] = None,
    clean_fraction: float = DEFAULT_CLEAN_FRACTION,
) -> Tuple[str, bool, int, float]:
    """Run the curtailed SPRT walk over an ordered mismatch stream.

    Returns ``(verdict, decided, queries_used, llr)``.  ``decided`` is True
    when a Wald threshold was crossed (the clean threshold additionally
    requires :func:`clean_floor` observations); if the stream (or
    ``budget``) runs out first the verdict falls back to the evidence seen
    so far — any mismatch means tampered (the full-replay rule), none means
    clean — with ``decided=False``.

    This is the pure decision kernel: the online verifier feeds it observed
    comparisons, and the campaign runner feeds it precomputed mismatch
    bitvectors to simulate queries-to-decision without re-querying.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = beta = 1.0 - confidence
    lower, upper = sprt_thresholds(alpha, beta)
    match_llr, mismatch_llr = llr_increments(p0, p1)
    limit = len(mismatches) if budget is None else min(budget, len(mismatches))
    floor = clean_floor(len(mismatches), clean_fraction)
    llr = 0.0
    cusum = 0.0
    any_mismatch = False
    used = 0
    for i in range(limit):
        used = i + 1
        step = mismatch_llr if mismatches[i] else match_llr
        any_mismatch = any_mismatch or bool(mismatches[i])
        llr += step
        # tampered side runs as a CUSUM (SPRT reflected at zero): accumulated
        # clean evidence must never mask a later tampering signal, mirroring
        # the full-replay rule where one mismatch is decisive regardless of
        # how many tests matched before it
        cusum = max(0.0, cusum + step)
        if cusum >= upper:
            return VERDICT_TAMPERED, True, used, llr
        if llr <= lower and used >= floor:
            return VERDICT_CLEAN, True, used, llr
    verdict = VERDICT_TAMPERED if any_mismatch else VERDICT_CLEAN
    return verdict, False, used, llr


@dataclass
class SequentialReport:
    """Outcome of a sequential (early-stopping) verification run.

    Mirrors :class:`~repro.validation.user.ValidationReport` where the
    concepts overlap (``detected``, ``mismatched_indices``,
    ``max_output_deviation``) and adds the sequential-test facts: the
    verdict, whether a Wald threshold was actually crossed (``decided``),
    the configured confidence, and queries-to-decision.
    """

    verdict: str
    decided: bool
    confidence: float
    queries_used: int
    num_tests: int
    llr: float
    threshold_lower: float
    threshold_upper: float
    order: str
    mismatched_indices: List[int] = field(default_factory=list)
    max_output_deviation: float = 0.0
    ledger: Optional[Dict[str, object]] = None

    @property
    def detected(self) -> bool:
        """True when the verdict is tampered (mirrors ValidationReport)."""
        return self.verdict == VERDICT_TAMPERED

    @property
    def queries_saved(self) -> int:
        """Queries avoided versus full replay of the fingerprint set."""
        return max(0, self.num_tests - self.queries_used)

    def summary(self) -> str:
        status = "TAMPERED" if self.detected else "SECURE"
        decided = "decided" if self.decided else "budget-exhausted"
        return (
            f"{status}: sequential verdict after {self.queries_used}/"
            f"{self.num_tests} queries ({decided}, confidence "
            f"{self.confidence:g}, order={self.order}, "
            f"llr={self.llr:+.3f} in [{self.threshold_lower:+.3f}, "
            f"{self.threshold_upper:+.3f}])"
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "verdict": self.verdict,
            "decided": self.decided,
            "confidence": self.confidence,
            "queries_used": self.queries_used,
            "num_tests": self.num_tests,
            "llr": self.llr,
            "threshold_lower": self.threshold_lower,
            "threshold_upper": self.threshold_upper,
            "order": self.order,
            "mismatched_indices": [int(i) for i in self.mismatched_indices],
            "max_output_deviation": float(self.max_output_deviation),
        }
        if self.ledger is not None:
            payload["ledger"] = dict(self.ledger)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SequentialReport":
        data = dict(payload)
        ledger = data.pop("ledger", None)
        return cls(
            verdict=str(data["verdict"]),
            decided=bool(data["decided"]),
            confidence=float(data["confidence"]),
            queries_used=int(data["queries_used"]),
            num_tests=int(data["num_tests"]),
            llr=float(data["llr"]),
            threshold_lower=float(data["threshold_lower"]),
            threshold_upper=float(data["threshold_upper"]),
            order=str(data["order"]),
            mismatched_indices=[int(i) for i in data.get("mismatched_indices", [])],
            max_output_deviation=float(data.get("max_output_deviation", 0.0)),
            ledger=dict(ledger) if ledger is not None else None,
        )


__all__ = [
    "DEFAULT_CLEAN_FRACTION",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_P0",
    "DEFAULT_P1",
    "ORDER_DISCRIMINATION",
    "ORDER_ENTROPY",
    "SequentialReport",
    "VERDICT_CLEAN",
    "VERDICT_TAMPERED",
    "clean_floor",
    "decide_from_mismatches",
    "entropy_order",
    "llr_increments",
    "query_order",
    "sprt_thresholds",
]
