"""The IP user's side of the validation scheme (right half of Fig. 1).

The user receives the DNN IP through an untrusted channel and can only query
it as a black box.  Validation is: run the vendor's functional tests, compare
the observed outputs against the packaged reference outputs, and flag the IP
as tampered on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Union

import numpy as np

from repro.nn.model import Sequential
from repro.validation.package import ValidationPackage

#: anything the user can query like a black box: a model object or a callable
#: mapping an input batch to output logits.
BlackBoxIP = Union[Sequential, Callable[[np.ndarray], np.ndarray]]


@dataclass
class ValidationReport:
    """Result of validating one IP against one package.

    Attributes
    ----------
    passed: True when every test produced outputs matching the reference.
    num_tests: number of functional tests that were replayed.
    mismatched_indices: indices of tests whose outputs differed.
    max_output_deviation: largest absolute logit difference observed.
    label_mismatches: number of tests whose *predicted class* changed (a
        stricter signal than logit deviation; always ≤ the mismatch count).
    """

    passed: bool
    num_tests: int
    mismatched_indices: List[int] = field(default_factory=list)
    max_output_deviation: float = 0.0
    label_mismatches: int = 0

    @property
    def num_mismatched(self) -> int:
        return len(self.mismatched_indices)

    @property
    def detected(self) -> bool:
        """Convenience alias: a failed validation means tampering was detected."""
        return not self.passed

    def summary(self) -> str:
        verdict = "SECURE" if self.passed else "TAMPERED"
        return (
            f"{verdict}: {self.num_mismatched}/{self.num_tests} tests mismatched, "
            f"max output deviation {self.max_output_deviation:.3e}, "
            f"{self.label_mismatches} predicted labels changed"
        )


def _query(ip: BlackBoxIP, inputs: np.ndarray) -> np.ndarray:
    """Query the black-box IP, accepting either a model or a callable."""
    if isinstance(ip, Sequential):
        return ip.predict(inputs)
    outputs = ip(inputs)
    return np.asarray(outputs, dtype=np.float64)


def report_from_outputs(
    observed: np.ndarray, package: ValidationPackage
) -> ValidationReport:
    """Compare observed logits against a package's reference outputs.

    The single comparison rule of the scheme, shared by the in-process
    :meth:`IPUser.validate` and the serving layer's coalesced replay
    (:mod:`repro.serve`), so a request answered from a merged batched
    dispatch can never score differently from a direct call on the same
    logits.  A test mismatches when any of its output logits deviates from
    the reference by more than the package's ``output_atol``.
    """
    if observed.shape != package.expected_outputs.shape:
        # output shape change is itself unambiguous tampering
        return ValidationReport(
            passed=False,
            num_tests=package.num_tests,
            mismatched_indices=list(range(package.num_tests)),
            max_output_deviation=float("inf"),
            label_mismatches=package.num_tests,
        )
    deviations = np.abs(observed - package.expected_outputs)
    per_test_max = deviations.max(axis=1)
    mismatched = np.where(per_test_max > package.output_atol)[0]
    observed_labels = np.argmax(observed, axis=1)
    label_mismatches = int(np.sum(observed_labels != package.expected_labels))
    return ValidationReport(
        passed=mismatched.size == 0,
        num_tests=package.num_tests,
        mismatched_indices=[int(i) for i in mismatched],
        max_output_deviation=float(per_test_max.max()) if package.num_tests else 0.0,
        label_mismatches=label_mismatches,
    )


class IPUser:
    """User-side workflow: replay a validation package against a black-box IP."""

    def __init__(self, package: ValidationPackage) -> None:
        if package.num_tests == 0:
            raise ValueError("validation package contains no tests")
        self.package = package

    def validate(self, ip: BlackBoxIP) -> ValidationReport:
        """Run every functional test through ``ip`` and compare outputs."""
        return report_from_outputs(_query(ip, self.package.tests), self.package)


def validate_ip(ip: BlackBoxIP, package: ValidationPackage) -> ValidationReport:
    """Functional shortcut for ``IPUser(package).validate(ip)``."""
    return IPUser(package).validate(ip)


__all__ = [
    "IPUser",
    "ValidationReport",
    "report_from_outputs",
    "validate_ip",
    "BlackBoxIP",
]
