"""The IP vendor's side of the validation scheme (left half of Fig. 1).

The vendor owns the trained model (white-box access) and therefore can compute
parameter gradients.  Their job is to (1) generate a small set of functional
tests with high validation coverage and (2) package those tests with the
model's reference outputs for release to IP users.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.parameter_coverage import packed_activation_masks
from repro.data.datasets import Dataset
from repro.nn.model import Sequential
from repro.testgen.base import GenerationResult, TestGenerator
from repro.testgen.combined import CombinedGenerator
from repro.utils.rng import as_generator
from repro.validation.package import DEFAULT_OUTPUT_ATOL, ValidationPackage


class IPVendor:
    """Vendor-side workflow: generate functional tests and release a package.

    Parameters
    ----------
    model: the trained DNN IP (white-box, vendor side).
    training_set: the vendor's training data, used by the selection-based
        generators.
    criterion: activation criterion for coverage accounting; defaults to the
        model-appropriate choice (ε = 0 for ReLU, small ε for Tanh).
    """

    def __init__(
        self,
        model: Sequential,
        training_set: Optional[Dataset] = None,
        criterion: Optional[ActivationCriterion] = None,
    ) -> None:
        if not model.built:
            raise ValueError("the vendor's model must be built and trained")
        self.model = model
        self.training_set = training_set
        self.criterion = criterion or default_criterion_for(model)

    # -- test generation -----------------------------------------------------
    def default_generator(self, **kwargs: object) -> CombinedGenerator:
        """The paper's recommended generator: the combined method."""
        if self.training_set is None:
            raise ValueError(
                "a training set is required for the combined/selection generators"
            )
        return CombinedGenerator(
            self.model, self.training_set, criterion=self.criterion, **kwargs  # type: ignore[arg-type]
        )

    def generate_tests(
        self,
        num_tests: int,
        generator: Optional[TestGenerator] = None,
        **generator_kwargs: object,
    ) -> GenerationResult:
        """Generate ``num_tests`` functional tests.

        Uses the combined method by default; any other
        :class:`~repro.testgen.base.TestGenerator` can be supplied.
        """
        gen = generator or self.default_generator(**generator_kwargs)
        return gen.generate(num_tests)

    # -- discrimination measurement -------------------------------------------
    def measure_discrimination(
        self,
        tests: np.ndarray,
        output_atol: float = DEFAULT_OUTPUT_ATOL,
        trials: int = 8,
        seed: int = 0,
        expected: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-test discriminative power against the surrogate attack suite.

        The vendor perturbs their own model with every registered attack
        family (``trials`` fresh draws each) and records, for each test, the
        fraction of perturbed copies it detects — observed output deviating
        from the reference by more than ``output_atol``.  The resulting
        scores ship as the package's v3 ``discrimination`` field and drive
        the sequential verifier's query order, so the user's most telling
        queries are spent first.  Fully deterministic for a given seed.
        """
        from repro.validation.detection import default_attack_factories

        test_array = np.asarray(tests, dtype=np.float64)
        if test_array.shape[0] == 0:
            raise ValueError("cannot measure discrimination with zero tests")
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        if expected is None:
            expected = self.model.predict(test_array)
        factories = default_attack_factories(test_array)
        detections = np.zeros(test_array.shape[0], dtype=np.float64)
        copies = 0
        base = as_generator(seed)
        for name in sorted(factories):
            factory = factories[name]
            for _ in range(trials):
                rng = np.random.default_rng(base.integers(0, 2**63 - 1))
                perturbed = factory(rng).apply(self.model).model
                observed = perturbed.predict(test_array)
                deviations = np.abs(observed - expected).max(axis=1)
                detections += deviations > output_atol
                copies += 1
        return detections / copies

    # -- packaging ------------------------------------------------------------
    def build_package(
        self,
        tests: np.ndarray | GenerationResult,
        output_atol: float = DEFAULT_OUTPUT_ATOL,
        extra_metadata: Optional[Dict[str, object]] = None,
        include_coverage_masks: bool = True,
        engine=None,
        measure_discrimination: bool = False,
        discrimination_trials: int = 8,
        discrimination_seed: int = 0,
    ) -> ValidationPackage:
        """Compute reference outputs for ``tests`` and wrap them in a package.

        One packed mask pass serves double duty: the package's
        ``validation_coverage`` metadata is the masks' union fraction, and
        (unless ``include_coverage_masks=False``) the packed masks themselves
        ship in the package, so coverage composition stays auditable without
        white-box access to the vendor model.

        ``engine`` optionally routes the mask pass through a caller-managed
        :class:`~repro.engine.Engine` (the :class:`repro.api.Session` and the
        campaign runner pass theirs), reusing its backend and memoized
        gradients; the reference outputs always come from the vendor model's
        own float64 forward pass, since they are the package's ground truth.
        """
        if isinstance(tests, GenerationResult):
            metadata: Dict[str, object] = {
                "generator": tests.method,
                "coverage": tests.final_coverage if tests.coverage_history else None,
            }
            test_array = tests.tests
        else:
            metadata = {}
            test_array = np.asarray(tests, dtype=np.float64)
        if test_array.shape[0] == 0:
            raise ValueError("cannot build a package with zero tests")

        expected = self.model.predict(test_array)
        packed = packed_activation_masks(
            self.model, test_array, self.criterion, engine=engine
        )
        metadata.update(
            {
                "model": self.model.name,
                "num_tests": int(test_array.shape[0]),
                "validation_coverage": packed.union().fraction,
            }
        )
        discrimination = None
        if measure_discrimination:
            discrimination = self.measure_discrimination(
                test_array,
                output_atol=output_atol,
                trials=discrimination_trials,
                seed=discrimination_seed,
                expected=expected,
            )
            metadata["discrimination_trials"] = int(discrimination_trials)
        if extra_metadata:
            metadata.update(extra_metadata)
        return ValidationPackage(
            tests=test_array,
            expected_outputs=expected,
            output_atol=output_atol,
            coverage_masks=packed if include_coverage_masks else None,
            metadata=metadata,
            discrimination=discrimination,
        )

    def release(
        self,
        num_tests: int,
        generator: Optional[TestGenerator] = None,
        output_atol: float = DEFAULT_OUTPUT_ATOL,
        **generator_kwargs: object,
    ) -> ValidationPackage:
        """End-to-end vendor flow: generate tests, then build the package."""
        result = self.generate_tests(num_tests, generator, **generator_kwargs)
        return self.build_package(result, output_atol=output_atol)


__all__ = ["IPVendor"]
