"""Shared fixtures: tiny datasets and trained models sized for fast tests.

The fixtures are deliberately small (12×12 images, a few hundred parameters)
so the whole suite runs in well under a minute; behaviour-level assertions do
not depend on model size.  Session scope keeps each expensive artefact (a
trained model) built exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.data.synth_digits import generate_digits
from repro.models.training import Trainer
from repro.models.zoo import small_cnn, small_mlp
from repro.utils.config import TrainingConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def blob_dataset() -> Dataset:
    """A tiny, linearly-separable 4-class dataset of flat feature vectors."""
    gen = np.random.default_rng(7)
    centers = gen.normal(0.0, 2.0, size=(4, 16))
    images = []
    labels = []
    for i in range(160):
        cls = i % 4
        sample = centers[cls] + gen.normal(0.0, 0.4, size=16)
        images.append(sample.reshape(1, 4, 4))
        labels.append(cls)
    images = np.clip((np.stack(images) + 4.0) / 8.0, 0.0, 1.0)
    return Dataset(images=images, labels=np.array(labels), name="blobs")


@pytest.fixture(scope="session")
def digit_dataset() -> Dataset:
    """Small synthetic-digit dataset (12×12) used by CNN-level tests."""
    return generate_digits(120, rng=5, size=12, name="tiny-digits")


@pytest.fixture(scope="session")
def trained_mlp(blob_dataset: Dataset):
    """A small trained MLP (ReLU) on the blob dataset."""
    flat = Dataset(
        images=blob_dataset.images.copy(),
        labels=blob_dataset.labels.copy(),
        name="blobs",
    )
    model = small_mlp(input_features=16, hidden_units=24, num_classes=4, rng=3)
    # flatten images to vectors for the MLP
    flat_images = flat.images.reshape(len(flat), -1)
    flat_ds = _FlatDataset(flat_images, flat.labels)
    Trainer(TrainingConfig(epochs=30, batch_size=32, learning_rate=5e-3, seed=3)).fit(
        model, flat_ds
    )
    return model


class _FlatDataset:
    """Minimal Dataset-like wrapper for flat feature vectors."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        self.images = images
        self.labels = labels
        self.name = "flat"

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def batches(self, batch_size: int, shuffle: bool = False, rng=None):
        order = np.arange(len(self))
        if shuffle:
            order = np.random.default_rng(0).permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]


@pytest.fixture(scope="session")
def trained_cnn(digit_dataset: Dataset):
    """A small trained ReLU CNN on 12×12 synthetic digits."""
    model = small_cnn(
        channels=4,
        dense_units=16,
        input_shape=(1, 12, 12),
        num_classes=10,
        activation="relu",
        rng=11,
    )
    Trainer(TrainingConfig(epochs=10, batch_size=16, learning_rate=3e-3, seed=11)).fit(
        model, digit_dataset
    )
    return model


@pytest.fixture(scope="session")
def trained_tanh_cnn(digit_dataset: Dataset):
    """A small trained Tanh CNN on 12×12 synthetic digits (saturating case)."""
    model = small_cnn(
        channels=4,
        dense_units=16,
        input_shape=(1, 12, 12),
        num_classes=10,
        activation="tanh",
        rng=13,
    )
    Trainer(TrainingConfig(epochs=10, batch_size=16, learning_rate=3e-3, seed=13)).fit(
        model, digit_dataset
    )
    return model
