"""Tests for reporting helpers, figure builders and experiment sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_bar_chart,
    ascii_line_chart,
    coverage_vs_budget,
    detection_table_markdown,
    epsilon_sweep,
    format_csv,
    format_markdown_table,
    format_percentage,
    image_set_coverage,
    scalarization_sweep,
    synthetic_sample_report,
    write_csv,
)
from repro.analysis.figures import CoverageCurves
from repro.testgen import TrainingSetSelector


class TestReporting:
    def test_markdown_table_contains_rows_and_headers(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
        text = format_markdown_table(rows)
        assert "| a | b |" in text
        assert "| 2 | 0.250 |" in text

    def test_markdown_table_rejects_empty(self):
        with pytest.raises(ValueError):
            format_markdown_table([])

    def test_csv_output(self, tmp_path):
        rows = [{"x": 1, "y": "foo"}]
        text = format_csv(rows)
        assert text.splitlines()[0] == "x,y"
        path = write_csv(rows, tmp_path / "out" / "rows.csv")
        assert path.exists()

    def test_format_percentage(self):
        assert format_percentage(0.872) == "87.2%"
        with pytest.raises(ValueError):
            format_percentage(1.5)

    def test_ascii_bar_chart(self):
        chart = ascii_bar_chart({"noise": 0.12, "train": 0.46})
        assert "noise" in chart and "train" in chart
        assert chart.count("\n") == 1
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_ascii_line_chart(self):
        chart = ascii_line_chart({"a": [0.1, 0.5, 0.9], "b": [0.2, 0.3, 0.4]})
        assert "a" in chart and "b" in chart
        with pytest.raises(ValueError):
            ascii_line_chart({})

    def test_detection_table_markdown_layout(self):
        rows = [
            {"method": "m1", "attack": "sba", "num_tests": 10, "detection_rate": 0.9},
            {"method": "m1", "attack": "gda", "num_tests": 10, "detection_rate": 0.8},
        ]
        text = detection_table_markdown(rows, budgets=[10], methods=["m1"], attacks=["sba", "gda"])
        assert "m1:sba" in text
        assert "90.0%" in text


class TestFigureBuilders:
    def test_image_set_coverage_structure(self, trained_cnn, digit_dataset):
        result = image_set_coverage(trained_cnn, digit_dataset, num_samples=5, rng=0)
        assert set(result.coverage_by_set) == {"noise", "imagenet-proxy", "training-set"}
        assert all(0.0 <= v <= 1.0 for v in result.coverage_by_set.values())
        rows = result.as_rows()
        assert len(rows) == 3

    def test_image_set_coverage_rejects_zero_samples(self, trained_cnn, digit_dataset):
        with pytest.raises(ValueError):
            image_set_coverage(trained_cnn, digit_dataset, num_samples=0)

    def test_coverage_vs_budget_curves(self, trained_cnn, digit_dataset):
        curves = coverage_vs_budget(
            trained_cnn,
            digit_dataset,
            max_tests=5,
            candidate_pool=20,
            rng=0,
            gradient_kwargs={"max_updates": 8},
            include_combined=True,
        )
        assert set(curves.curves) == {
            "training-selection",
            "gradient-generation",
            "combined",
        }
        for values in curves.curves.values():
            assert len(values) == 5
            assert all(0.0 <= v <= 1.0 for v in values)
        assert len(curves.as_rows()) == 15

    def test_crossover_budget(self):
        curves = CoverageCurves(
            model_name="m",
            budgets=[1, 2, 3],
            curves={"a": [0.5, 0.6, 0.6], "b": [0.3, 0.65, 0.9]},
        )
        assert curves.crossover_budget("a", "b") == 2
        flat = CoverageCurves(
            model_name="m",
            budgets=[1, 2],
            curves={"a": [0.5, 0.9], "b": [0.4, 0.8]},
        )
        assert flat.crossover_budget("a", "b") is None

    def test_synthetic_sample_report(self, trained_cnn, digit_dataset):
        report = synthetic_sample_report(trained_cnn, digit_dataset, rng=0)
        assert 0.0 <= report.synthesis_accuracy <= 1.0
        assert len(report.per_class_similarity) == 10
        assert -1.0 <= report.mean_similarity <= 1.0


class TestSweeps:
    def test_epsilon_sweep_monotone_non_increasing(self, trained_tanh_cnn, digit_dataset):
        tests = digit_dataset.images[:4]
        result = epsilon_sweep(trained_tanh_cnn, tests, epsilons=(0.0, 1e-3, 1e-1))
        assert result.coverages == sorted(result.coverages, reverse=True)
        assert len(result.as_rows()) == 3

    def test_scalarization_sweep_covers_all_modes(self, trained_cnn, digit_dataset):
        tests = digit_dataset.images[:3]
        result = scalarization_sweep(trained_cnn, tests)
        assert result.values == ["sum", "max", "predicted"]
        assert all(0.0 <= c <= 1.0 for c in result.coverages)


class TestCoverageMemoryRows:
    def test_rows_report_eighth_ratio(self):
        from repro.analysis import coverage_memory_rows

        rows = coverage_memory_rows(64 * 1000, [10, 100])
        assert [r["pool_size"] for r in rows] == [10, 100]
        for row in rows:
            assert row["packed_bytes"] * 8 == row["dense_bytes"]
            assert row["ratio"] == pytest.approx(0.125)

    def test_word_padding_accounted(self):
        from repro.analysis import coverage_memory_rows

        (row,) = coverage_memory_rows(65, [4])
        assert row["packed_bytes"] == 4 * 2 * 8  # two words per row

    def test_validation(self):
        from repro.analysis import coverage_memory_rows

        with pytest.raises(ValueError):
            coverage_memory_rows(0, [10])
        with pytest.raises(ValueError):
            coverage_memory_rows(100, [0])

    def test_format_bytes(self):
        from repro.analysis import format_bytes

        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(10 * 1024**3) == "10.0 GB"
