"""Tests of the repro.api façade: Session, RunConfig, typed requests, and
the deprecation shims left behind by the registry migration."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    ReleasePackage,
    ReleaseRequest,
    RunConfig,
    Session,
    SweepRequest,
    ValidateRequest,
    ValidationOutcome,
)


def _toml_available() -> bool:
    try:
        import tomllib  # noqa: F401
    except ModuleNotFoundError:
        try:
            import tomli  # noqa: F401
        except ModuleNotFoundError:
            return False
    return True


requires_toml = pytest.mark.skipif(
    not _toml_available(), reason="needs tomllib (3.11+) or the tomli backport"
)

#: preparation small enough for unit tests; shared so the session-scoped
#: release fixture and the one-shot tests hit the same cached experiment
TINY_PREP = dict(train_size=30, test_size=12, epochs=1, width_multiplier=0.1)
TINY_GEN = dict(num_tests=3, candidate_pool=10, gradient_updates=3)


@pytest.fixture(scope="module")
def session():
    with Session() as s:
        yield s


@pytest.fixture(scope="module")
def released(session):
    return session.release(ReleaseRequest(dataset="mnist", **TINY_PREP, **TINY_GEN))


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------


class TestRunConfig:
    def test_defaults_validate(self):
        RunConfig().validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunConfig fields"):
            RunConfig.from_dict({"turbo": True})

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="workers is only meaningful"):
            RunConfig(workers=2).validate()
        with pytest.raises(ValueError, match="unknown dtype"):
            RunConfig(dtype="float16").validate()
        with pytest.raises(ValueError, match="batch_size"):
            RunConfig(batch_size=0).validate()
        with pytest.raises(ValueError, match="engine_cache_size"):
            RunConfig(engine_cache_size=0).validate()

    def test_json_round_trip(self, tmp_path):
        config = RunConfig(backend="numpy", batch_size=32, seed=7)
        path = tmp_path / "run.json"
        path.write_text(json.dumps(config.to_dict()))
        assert RunConfig.load(path) == config

    @requires_toml
    def test_toml_with_run_table(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text('[run]\nbackend = "numpy"\nbatch_size = 16\n')
        assert RunConfig.load(path).batch_size == 16

    @requires_toml
    def test_toml_rejects_split_tables(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text('seed = 3\n[run]\nbackend = "numpy"\n')
        with pytest.raises(ValueError, match="outside the \\[run\\] table"):
            RunConfig.load(path)


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


class TestRequests:
    def test_release_request_from_dict_round_trip(self):
        request = ReleaseRequest(dataset="cifar", num_tests=5, strategy="random")
        rebuilt = ReleaseRequest.from_dict(request.to_dict())
        assert rebuilt == request

    def test_release_request_validation(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ReleaseRequest(strategy="psychic").validate()
        with pytest.raises(ValueError, match="num_tests"):
            ReleaseRequest(num_tests=0).validate()
        with pytest.raises(ValueError, match="train_size"):
            ReleaseRequest(train_size=0).validate()

    def test_coerce_accepts_dict_and_overrides(self):
        request = ReleaseRequest.coerce({"dataset": "mnist"}, num_tests=4)
        assert request.dataset == "mnist" and request.num_tests == 4
        base = ReleaseRequest(num_tests=9)
        assert ReleaseRequest.coerce(base) is base
        assert ReleaseRequest.coerce(base, num_tests=2).num_tests == 2
        with pytest.raises(TypeError, match="cannot build"):
            ReleaseRequest.coerce(42)

    @requires_toml
    def test_release_request_loads_toml(self, tmp_path):
        path = tmp_path / "release.toml"
        path.write_text('[release]\ndataset = "mnist"\nnum_tests = 6\n')
        request = ReleaseRequest.load(path)
        assert request.num_tests == 6

    def test_validate_request_requires_package(self):
        with pytest.raises(ValueError, match="package is required"):
            ValidateRequest().validate()

    def test_validate_request_with_object_package_not_serialisable(self, released):
        request = ValidateRequest(package=released.package)
        request.validate()
        with pytest.raises(ValueError, match="not\\s+serialisable"):
            request.to_dict()

    def test_sweep_request_requires_spec(self):
        with pytest.raises(ValueError, match="spec is required"):
            SweepRequest().validate()

    def test_sweep_request_resolves_spec_dict(self):
        from repro.campaign import CampaignSpec

        request = SweepRequest(
            spec=dict(models=("mnist",), strategies=("random",), budgets=(2,)),
            store="s.jsonl",
        )
        spec = request.resolve_spec()
        assert isinstance(spec, CampaignSpec)
        assert request.to_dict()["store"] == "s.jsonl"


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------


class TestSession:
    def test_config_coercion(self):
        assert Session({"batch_size": 16}).config.batch_size == 16
        assert Session(RunConfig(seed=3), seed=5).config.seed == 5
        assert Session(batch_size=8).config.batch_size == 8
        with pytest.raises(TypeError, match="cannot build a RunConfig"):
            Session(42)

    def test_engine_lru_reuse_and_eviction(self, trained_mlp, trained_cnn):
        with Session(engine_cache_size=1) as s:
            e1 = s.engine_for(trained_mlp)
            assert s.engine_for(trained_mlp) is e1  # warm reuse
            e2 = s.engine_for(trained_cnn)  # evicts the MLP engine
            assert s.engine_for(trained_cnn) is e2
            assert s.engine_for(trained_mlp) is not e1

    def test_engines_inherit_config(self, trained_mlp):
        with Session(batch_size=8, memory_budget_bytes=1 << 20) as s:
            engine = s.engine_for(trained_mlp)
            assert engine.batch_size == 8
            assert engine.memory_budget_bytes == 1 << 20
            assert engine.backend is s.backend

    def test_closed_session_rejects_use(self, trained_mlp):
        s = Session()
        s.close()
        with pytest.raises(RuntimeError, match="session is closed"):
            s.engine_for(trained_mlp)
        with pytest.raises(RuntimeError, match="session is closed"):
            _ = s.backend

    def test_release_produces_consistent_package(self, released):
        assert isinstance(released, ReleasePackage)
        assert released.num_tests == 3
        assert 0.0 < released.coverage <= 1.0
        assert released.package.metadata["generator"] == "combined"
        # reference outputs really are the model's outputs
        np.testing.assert_allclose(
            released.model.predict(released.package.tests),
            released.package.expected_outputs,
        )

    def test_release_reuses_prepared_model(self, session, released):
        second = session.release(
            ReleaseRequest(dataset="mnist", **TINY_PREP, **TINY_GEN, strategy="random")
        )
        assert second.model is released.model  # same cached preparation
        assert second.generation.method != released.generation.method

    def test_release_is_deterministic_across_sessions(self, released):
        with Session() as other:
            again = other.release(
                ReleaseRequest(dataset="mnist", **TINY_PREP, **TINY_GEN)
            )
        np.testing.assert_array_equal(again.package.tests, released.package.tests)
        np.testing.assert_array_equal(
            again.package.expected_outputs, released.package.expected_outputs
        )

    def test_validate_clean_and_tampered(self, session, released):
        clean = session.validate(package=released.package, ip=released.model)
        assert isinstance(clean, ValidationOutcome)
        assert clean.passed and not clean.detected
        from repro.attacks import SingleBiasAttack

        tampered_model = SingleBiasAttack(rng=3).apply(released.model).model
        tampered = session.validate(
            ValidateRequest(package=released.package), ip=tampered_model
        )
        assert tampered.detected
        assert tampered.num_mismatched > 0
        assert "TAMPERED" in tampered.summary()

    def test_validate_accepts_callable_black_box(self, session, released):
        calls = []

        def black_box(batch):
            calls.append(batch.shape[0])
            return released.model.predict(batch)

        outcome = session.validate(package=released.package, ip=black_box)
        assert outcome.passed and calls == [released.num_tests]

    def test_validate_from_saved_artefacts(self, session, released, tmp_path):
        paths = released.save(tmp_path)
        assert sorted(p.name for p in paths.values()) == ["model.npz", "package.npz"]
        outcome = session.validate(
            ValidateRequest(
                package=str(paths["package"]),
                model_path=str(paths["model"]),
                arch="mnist",
                width_multiplier=0.1,
            )
        )
        assert outcome.passed

    def test_cifar_round_trip_applies_width_scale(self, tmp_path):
        # the cifar recipe trains at width_multiplier * 0.5; the symmetric
        # ValidateRequest(arch="cifar", width_multiplier=...) must apply the
        # same scale or the rebuilt model's parameter shapes mismatch
        with Session() as s:
            released = s.release(
                ReleaseRequest(
                    dataset="cifar",
                    train_size=20,
                    test_size=8,
                    epochs=1,
                    width_multiplier=0.125,
                    num_tests=2,
                    candidate_pool=8,
                    gradient_updates=2,
                )
            )
            paths = released.save(tmp_path)
            outcome = s.validate(
                ValidateRequest(
                    package=str(paths["package"]),
                    model_path=str(paths["model"]),
                    arch="cifar",
                    width_multiplier=0.125,
                )
            )
        assert outcome.passed

    def test_validate_without_ip_or_path_rejected(self, session, released):
        with pytest.raises(ValueError, match="no IP to validate"):
            session.validate(package=released.package)

    def test_outcome_round_trips_to_dict(self, session, released):
        outcome = session.validate(package=released.package, ip=released.model)
        data = outcome.to_dict()
        assert data["passed"] is True
        assert data["num_tests"] == released.num_tests

    def test_sweep_delegates_and_resumes(self, tmp_path):
        spec = dict(
            attacks=("sba",),
            models=("mnist",),
            strategies=("random",),
            budgets=(2,),
            trials=2,
            train_size=24,
            test_size=12,
            epochs=1,
            candidate_pool=12,
            gradient_updates=3,
            reference_inputs=6,
        )
        store = str(tmp_path / "results.jsonl")
        with Session() as s:
            first = s.sweep(SweepRequest(spec=spec, store=store))
            assert first.executed == 1
            resumed = s.sweep(spec=spec, store=store)
            assert resumed.executed == 0 and resumed.skipped == 1

    def test_sweep_writes_report(self, tmp_path):
        spec = dict(
            attacks=("sba",),
            models=("mnist",),
            strategies=("random",),
            budgets=(2,),
            trials=1,
            train_size=24,
            test_size=12,
            epochs=1,
            candidate_pool=12,
            gradient_updates=3,
            reference_inputs=6,
        )
        report = tmp_path / "report.md"
        with Session() as s:
            s.sweep(
                spec=spec, store=str(tmp_path / "r.jsonl"), report=str(report)
            )
        assert "Detection" in report.read_text() or report.stat().st_size > 0


# ---------------------------------------------------------------------------
# module-level one-shot helpers
# ---------------------------------------------------------------------------


class TestOneShotHelpers:
    def test_release_and_validate_functions(self):
        from repro import release, validate

        released = release(
            ReleaseRequest(dataset="mnist", **TINY_PREP, **TINY_GEN, strategy="random")
        )
        outcome = validate(
            ValidateRequest(package=released.package), ip=released.model
        )
        assert outcome.passed

    def test_request_object_calls_do_not_warn(self):
        from repro import release, validate

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            released = release(
                ReleaseRequest(
                    dataset="mnist", **TINY_PREP, **TINY_GEN, strategy="random"
                )
            )
            outcome = validate(
                ValidateRequest(package=released.package), ip=released.model
            )
        assert outcome.passed
        assert [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ] == []

    def test_top_level_lazy_exports(self):
        import repro

        assert repro.Session is Session
        assert repro.RunConfig is RunConfig
        assert callable(repro.release) and callable(repro.validate)
        assert repro.get_registry().names("strategies")
        with pytest.raises(AttributeError, match="has no attribute"):
            _ = repro.not_an_export

    def test_import_repro_is_lazy(self):
        # the lazy surface must not leak eager imports: a fresh interpreter
        # importing repro must not pull numpy
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        code = "import repro, sys; sys.exit(1 if 'numpy' in sys.modules else 0)"
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        assert result.returncode == 0


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------


class TestDeprecatedShims:
    """Every pre-existing public entry point still works, warning exactly once."""

    def _single_deprecation(self, fn, *args, **kwargs):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = fn(*args, **kwargs)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1, (
            f"{fn.__name__} must warn exactly once, got {len(deprecations)}"
        )
        assert "deprecated" in str(deprecations[0].message)
        return result

    def test_available_strategies_shim(self):
        from repro.testgen.registry import available_strategies

        names = self._single_deprecation(available_strategies)
        assert "combined" in names

    def test_get_strategy_shim(self):
        from repro.registry import registry
        from repro.testgen.registry import get_strategy

        factory = self._single_deprecation(get_strategy, "random")
        assert factory is registry.get("strategies", "random")

    def test_strategy_knobs_shim(self):
        from repro.testgen.registry import strategy_knobs

        knobs = self._single_deprecation(strategy_knobs, "combined")
        assert knobs == {
            "candidate_pool": "candidate_pool",
            "max_updates": "gradient_updates",
        }

    def test_register_strategy_shim(self):
        from repro.registry import registry
        from repro.testgen.registry import register_strategy

        self._single_deprecation(
            register_strategy, "test-shim", lambda *a, **k: None, knobs={"x": "y"}
        )
        try:
            assert registry.knobs("strategies", "test-shim") == {"x": "y"}
        finally:
            registry.unregister("strategies", "test-shim")

    def test_build_generator_shim(self, trained_cnn, digit_dataset):
        from repro.testgen.registry import build_generator

        generator = self._single_deprecation(
            build_generator, "random", trained_cnn, digit_dataset, rng=0
        )
        assert generator.generate(2).num_tests == 2

    def test_shim_imports_resolve_without_warning(self):
        # importing the deprecated module (and the names re-exported through
        # repro.testgen) must stay silent; only *calls* warn
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import importlib

            import repro.testgen.registry as shim

            importlib.reload(shim)
            from repro.testgen import available_strategies  # noqa: F401
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []

    def test_one_shot_validate_adhoc_kwargs_shim(self, released):
        from repro.api import validate

        outcome = self._single_deprecation(
            validate, package=released.package, ip=released.model
        )
        assert outcome.passed

    def test_one_shot_release_adhoc_kwargs_shim(self):
        # the warning fires before coercion, so an invalid field both warns
        # and raises — no training needed to pin the shim
        from repro.api import release

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ValueError, match="train_size"):
                release(train_size=-1)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ReleaseRequest" in str(deprecations[0].message)

    def test_one_shot_sweep_adhoc_kwargs_shim(self):
        from repro.api import sweep

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ValueError, match="spec is required"):
                sweep(store="never-written.jsonl")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "SweepRequest" in str(deprecations[0].message)


# ---------------------------------------------------------------------------
# the versioned wire envelope
# ---------------------------------------------------------------------------


class TestWireEnvelope:
    def test_request_round_trips_through_wire(self):
        from repro.api import WIRE_SCHEMA_VERSION

        request = ReleaseRequest(dataset="mnist", num_tests=7, strategy="random")
        wire = request.to_wire()
        assert wire["schema_version"] == WIRE_SCHEMA_VERSION
        assert wire["kind"] == "release"
        assert wire["body"]["num_tests"] == 7
        assert ReleaseRequest.from_wire(wire) == request

    def test_wire_is_json_serialisable(self):
        request = ValidateRequest(package="p.npz", model_path="m.npz")
        wire = json.loads(json.dumps(request.to_wire()))
        assert ValidateRequest.from_wire(wire) == request

    def test_envelope_rejects_future_schema_version(self):
        wire = ValidateRequest(package="p.npz").to_wire()
        wire["schema_version"] = 99
        with pytest.raises(ValueError, match="unsupported wire schema_version"):
            ValidateRequest.from_wire(wire)

    def test_envelope_rejects_wrong_kind(self):
        wire = ValidateRequest(package="p.npz").to_wire()
        with pytest.raises(ValueError, match="does not match the expected"):
            ReleaseRequest.from_wire(wire)

    def test_envelope_requires_version_and_kind(self):
        from repro.api import open_envelope

        with pytest.raises(ValueError, match="missing 'schema_version'"):
            open_envelope({"kind": "validate", "body": {}})
        with pytest.raises(ValueError, match="missing 'kind'"):
            open_envelope({"schema_version": 1, "body": {}})
        with pytest.raises(ValueError, match="'body' must be a dict"):
            open_envelope({"schema_version": 1, "kind": "x", "body": 3})

    def test_coerce_detects_wire_envelopes(self):
        request = ValidateRequest(package="p.npz", arch="mnist")
        coerced = ValidateRequest.coerce(request.to_wire())
        assert coerced == request
        # bare field dicts keep working unchanged
        assert ValidateRequest.coerce({"package": "p.npz"}).package == "p.npz"

    def test_session_validate_accepts_wire_envelope(self, session, released, tmp_path):
        paths = released.save(tmp_path)
        request = ValidateRequest(
            package=str(paths["package"]),
            model_path=str(paths["model"]),
            arch="mnist",
            width_multiplier=0.1,
        )
        outcome = session.validate(request.to_wire())
        assert outcome.passed

    def test_outcome_round_trips_through_wire(self, session, released):
        outcome = session.validate(
            ValidateRequest(package=released.package), ip=released.model
        )
        wire = json.loads(json.dumps(outcome.to_wire()))
        assert wire["kind"] == "outcome"
        assert ValidationOutcome.from_wire(wire) == outcome
