"""API-stability snapshot: the public façade surface is pinned.

Walks every ``__all__`` export of ``repro``, ``repro.api`` and
``repro.registry`` with its signature (see ``repro.api.surface``) and
compares against the committed ``tests/data/api_surface.json``.  Any
accidental breaking change — removed export, changed signature, renamed
dataclass field — fails here (and in the CI lint job's ``api-surface``
step).  Intentional changes re-pin with::

    PYTHONPATH=src python scripts/check_api_surface.py --update
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.surface import SURFACE_MODULES, api_surface

SNAPSHOT = Path(__file__).parent / "data" / "api_surface.json"


@pytest.fixture(scope="module")
def live_surface():
    return api_surface()


def test_snapshot_file_exists():
    assert SNAPSHOT.exists(), (
        "missing tests/data/api_surface.json — pin it with "
        "`PYTHONPATH=src python scripts/check_api_surface.py --update`"
    )


def test_surface_matches_snapshot(live_surface):
    pinned = json.loads(SNAPSHOT.read_text())
    assert live_surface == pinned, (
        "public API surface drifted from tests/data/api_surface.json; if the "
        "change is intentional, re-pin with `PYTHONPATH=src python "
        "scripts/check_api_surface.py --update` and commit the diff"
    )


def test_surface_covers_all_facade_modules(live_surface):
    assert tuple(live_surface) == SURFACE_MODULES


def test_surface_pins_core_names(live_surface):
    # belt-and-braces: the names the README quickstart depends on are present
    assert "Session" in live_surface["repro.api"]
    assert "RunConfig" in live_surface["repro.api"]
    assert "ReleaseRequest" in live_surface["repro.api"]
    assert "ValidationOutcome" in live_surface["repro.api"]
    assert "register" in live_surface["repro.registry"]
    assert "Session" in live_surface["repro"]
    assert "__version__" in live_surface["repro"]


def test_descriptions_record_signatures(live_surface):
    session = live_surface["repro.api"]["Session"]
    assert session["kind"] == "class"
    assert "config" in session["signature"]
    assert "release" in session["members"]
    release = live_surface["repro.api"]["release"]
    assert release["kind"] == "function"
    run_config = live_surface["repro.api"]["RunConfig"]
    assert run_config["kind"] == "dataclass"
    assert "backend" in run_config["fields"]
