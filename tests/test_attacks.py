"""Tests for the parameter-perturbation attacks (SBA, GDA, random, bit-flip)."""

import numpy as np
import pytest

from repro.attacks import (
    BitFlipAttack,
    GradientDescentAttack,
    PerturbationRecord,
    RandomPerturbation,
    SingleBiasAttack,
    apply_record,
    bias_flat_indices,
    flip_bit,
    revert_record,
    weight_flat_indices,
)


class TestPerturbationRecord:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PerturbationRecord("x", np.array([1, 2]), np.array([0.1]))

    def test_statistics(self):
        record = PerturbationRecord(
            "x", np.array([3, 7]), np.array([0.5, -2.0]), parameter_names=["a", "b"]
        )
        assert record.num_modified == 2
        assert record.max_abs_delta == 2.0
        assert record.l2_norm == pytest.approx(np.sqrt(0.25 + 4.0))


class TestIndexHelpers:
    def test_bias_and_weight_indices_partition_parameters(self, trained_cnn):
        total = trained_cnn.num_parameters()
        biases = bias_flat_indices(trained_cnn)
        weights = weight_flat_indices(trained_cnn)
        assert biases.size + weights.size == total
        assert np.intersect1d(biases, weights).size == 0

    def test_apply_and_revert_record(self, trained_cnn):
        record = PerturbationRecord("x", np.array([0, 5]), np.array([1.0, -1.0]))
        perturbed = apply_record(trained_cnn, record)
        assert perturbed.parameter_view().get_scalar(0) == pytest.approx(
            trained_cnn.parameter_view().get_scalar(0) + 1.0
        )
        restored = revert_record(perturbed, record)
        np.testing.assert_allclose(
            restored.parameter_view().flat_values(),
            trained_cnn.parameter_view().flat_values(),
        )


class TestSingleBiasAttack:
    def test_modifies_exactly_one_bias(self, trained_cnn):
        attack = SingleBiasAttack(rng=0)
        outcome = attack.apply(trained_cnn)
        assert outcome.record.num_modified == 1
        assert outcome.record.attack == "sba"
        assert outcome.record.parameter_names[0].endswith("/bias")

    def test_original_model_untouched(self, trained_cnn):
        before = trained_cnn.parameter_view().flat_values()
        SingleBiasAttack(rng=1).apply(trained_cnn)
        np.testing.assert_array_equal(before, trained_cnn.parameter_view().flat_values())

    def test_perturbation_is_large(self, trained_cnn):
        outcome = SingleBiasAttack(magnitude=10.0, rng=2).apply(trained_cnn)
        scale = np.sqrt(np.mean(trained_cnn.parameter_view().flat_values() ** 2))
        assert outcome.record.max_abs_delta > scale

    def test_with_reference_inputs_changes_predictions(self, trained_cnn, digit_dataset):
        refs = digit_dataset.images[:16]
        attack = SingleBiasAttack(magnitude=20.0, reference_inputs=refs, rng=3)
        outcome = attack.apply(trained_cnn)
        before = trained_cnn.predict_classes(refs)
        after = outcome.model.predict_classes(refs)
        assert np.any(before != after)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SingleBiasAttack(magnitude=0.0)
        with pytest.raises(ValueError):
            SingleBiasAttack(max_attempts=0)


class TestGradientDescentAttack:
    def test_touches_limited_parameter_count(self, trained_cnn, digit_dataset):
        attack = GradientDescentAttack(digit_dataset.images[:8], num_parameters=15, rng=0)
        outcome = attack.apply(trained_cnn)
        assert 0 < outcome.record.num_modified <= 15
        assert outcome.record.attack == "gda"

    def test_perturbations_are_bounded(self, trained_cnn, digit_dataset):
        attack = GradientDescentAttack(
            digit_dataset.images[:8], num_parameters=10, max_relative_change=1.0, rng=1
        )
        outcome = attack.apply(trained_cnn)
        scale = np.sqrt(np.mean(trained_cnn.parameter_view().flat_values() ** 2))
        assert outcome.record.max_abs_delta <= 1.0 * scale + 1e-9

    def test_changes_model_outputs(self, trained_cnn, digit_dataset):
        refs = digit_dataset.images[:8]
        outcome = GradientDescentAttack(refs, rng=2).apply(trained_cnn)
        assert not np.allclose(outcome.model.predict(refs), trained_cnn.predict(refs))

    def test_rejects_bad_arguments(self, digit_dataset):
        refs = digit_dataset.images[:4]
        with pytest.raises(ValueError):
            GradientDescentAttack(np.zeros((0, 1, 12, 12)))
        with pytest.raises(ValueError):
            GradientDescentAttack(refs, num_parameters=0)
        with pytest.raises(ValueError):
            GradientDescentAttack(refs, step_size=0)
        with pytest.raises(ValueError):
            GradientDescentAttack(refs, max_steps=0)
        with pytest.raises(ValueError):
            GradientDescentAttack(refs, max_relative_change=0)


class TestRandomPerturbation:
    def test_touches_requested_parameter_count(self, trained_cnn):
        outcome = RandomPerturbation(num_parameters=7, rng=0).apply(trained_cnn)
        assert outcome.record.num_modified == 7
        assert outcome.record.attack == "random"

    def test_deltas_scale_with_relative_std(self, trained_cnn):
        small = RandomPerturbation(num_parameters=50, relative_std=0.1, rng=1).apply(
            trained_cnn
        )
        large = RandomPerturbation(num_parameters=50, relative_std=5.0, rng=1).apply(
            trained_cnn
        )
        assert large.record.l2_norm > small.record.l2_norm

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            RandomPerturbation(num_parameters=0)
        with pytest.raises(ValueError):
            RandomPerturbation(relative_std=0.0)


class TestBitFlip:
    def test_flip_bit_round_trip(self):
        value = 0.7853981
        for bit in (0, 20, 52, 60, 63):
            assert flip_bit(flip_bit(value, bit), bit) == pytest.approx(value)

    def test_flip_sign_bit(self):
        assert flip_bit(1.5, 63) == -1.5

    def test_flip_bit_rejects_bad_position(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 64)

    def test_attack_keeps_model_finite(self, trained_cnn, digit_dataset):
        outcome = BitFlipAttack(num_parameters=3, rng=0).apply(trained_cnn)
        assert outcome.record.num_modified == 3
        outputs = outcome.model.predict(digit_dataset.images[:4])
        assert np.isfinite(outputs).all()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BitFlipAttack(num_parameters=0)
        with pytest.raises(ValueError):
            BitFlipAttack(bits=[70])
        with pytest.raises(ValueError):
            BitFlipAttack(bits=[])
