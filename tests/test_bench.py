"""repro.bench harness: timing, report schema, regression gate, CLI.

Functional tests only — no assertions on absolute wall-clock (the suite runs
on arbitrary machines).  The regression logic is exercised with synthetic
reports so the gate's semantics are pinned independently of timer noise.
"""

import json

import numpy as np
import pytest

from repro.bench import (
    DEFAULT_REGRESSION_THRESHOLD,
    ENV_SKIP_REGRESSION,
    SCHEMA_VERSION,
    BenchmarkResult,
    best_of,
    compare_reports,
    load_report,
    measure,
    peak_rss_bytes,
    report_results,
    run_workloads,
    write_report,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.workloads import WORKLOAD_NAMES, parallel_speedup
from repro.models.zoo import small_cnn


def _result(name="forward", backend="numpy", dtype="float64", wall_s=0.1, samples=10):
    return BenchmarkResult(
        name=name,
        backend=backend,
        dtype=dtype,
        wall_s=wall_s,
        samples=samples,
        repeats=1,
        throughput=samples / wall_s,
        cache_hit_rate=0.0,
        peak_rss_bytes=0,
    )


class TestHarness:
    def test_best_of_returns_value_and_time(self):
        calls = []

        def fn():
            calls.append(1)
            return 42

        wall, value = best_of(fn, repeats=3, warmup=2)
        assert value == 42
        assert wall >= 0.0
        assert len(calls) == 5  # warmups + repeats
        with pytest.raises(ValueError):
            best_of(fn, repeats=0)

    def test_measure_packages_result(self):
        result = measure("w", lambda: 0.5, samples=20, repeats=2, dtype="float32")
        assert result.key == ("w", "numpy", "float32")
        assert result.value == 0.5  # scalar results are captured automatically
        assert result.samples == 20 and result.repeats == 2
        assert result.throughput > 0
        assert result.peak_rss_bytes > 0

    def test_peak_rss_is_plausible(self):
        assert peak_rss_bytes() > 10 * 1024 * 1024  # a python process is >10MB

    def test_report_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        written = write_report([_result(), _result(name="masks")], path, meta={"k": 1})
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA_VERSION == written["schema"]
        assert loaded["meta"] == {"k": 1}
        assert loaded["host"]["cores"] >= 1
        results = report_results(loaded)
        assert [r.name for r in results] == ["forward", "masks"]
        assert results[0].wall_s == pytest.approx(0.1)

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "results": []}))
        with pytest.raises(ValueError):
            load_report(path)
        path.write_text(json.dumps({"schema": SCHEMA_VERSION}))
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionGate:
    def _reports(self, baseline_s, current_s, samples=(10, 10)):
        base = {"schema": SCHEMA_VERSION, "results": [_result(wall_s=baseline_s, samples=samples[0]).to_dict()]}
        cur = {"schema": SCHEMA_VERSION, "results": [_result(wall_s=current_s, samples=samples[1]).to_dict()]}
        return cur, base

    def test_slowdown_beyond_threshold_is_flagged(self):
        cur, base = self._reports(0.100, 0.125)
        regs = compare_reports(cur, base, threshold=0.2)
        assert len(regs) == 1
        assert regs[0].slowdown == pytest.approx(0.25)
        assert "forward" in regs[0].describe()

    def test_slowdown_within_threshold_passes(self):
        cur, base = self._reports(0.100, 0.115)
        assert compare_reports(cur, base, threshold=0.2) == []

    def test_speedups_never_flag(self):
        cur, base = self._reports(0.100, 0.010)
        assert compare_reports(cur, base, threshold=0.0) == []

    def test_unmatched_configurations_are_ignored(self):
        cur = {"schema": SCHEMA_VERSION, "results": [_result(backend="parallel", wall_s=9.9).to_dict()]}
        base = {"schema": SCHEMA_VERSION, "results": [_result(backend="numpy", wall_s=0.1).to_dict()]}
        assert compare_reports(cur, base) == []

    def test_mismatched_pool_sizes_are_ignored(self):
        """A quick run must never be gated against a full-pool baseline."""
        cur, base = self._reports(0.100, 9.900, samples=(100, 24))
        assert compare_reports(cur, base) == []

    def test_threshold_validation(self):
        cur, base = self._reports(0.1, 0.1)
        with pytest.raises(ValueError):
            compare_reports(cur, base, threshold=-0.1)
        assert DEFAULT_REGRESSION_THRESHOLD == pytest.approx(0.20)


class TestWorkloads:
    @pytest.fixture(scope="class")
    def tiny_run(self):
        """One real (tiny) workload run shared by the assertions below."""
        model = small_cnn(rng=0)
        images = np.random.default_rng(1).random((6, *model.input_shape))
        return run_workloads(model, images, "numpy", "float64", repeats=1)

    def test_all_workloads_measured(self, tiny_run):
        assert [r.name for r in tiny_run] == list(WORKLOAD_NAMES)

    def test_coverage_value_recorded_for_equivalence(self, tiny_run):
        by_name = {r.name: r for r in tiny_run}
        assert 0.0 < by_name["coverage"].value <= 1.0
        # the memoized revisit recomputes the same quantity
        assert by_name["revisit"].value == pytest.approx(by_name["coverage"].value)
        assert by_name["revisit"].cache_hit_rate > 0.0

    def test_packing_workload_reports_memory_ratio(self, tiny_run):
        by_name = {r.name: r for r in tiny_run}
        extra = by_name["packing"].extra
        assert extra["packed_mask_bytes"] > 0
        # packed ≤ 1/8 dense up to word-granularity padding
        assert extra["packed_mask_bytes"] < extra["dense_mask_bytes"] / 7.5
        assert extra["packed_to_dense_ratio"] == pytest.approx(
            extra["packed_mask_bytes"] / extra["dense_mask_bytes"]
        )

    def test_selection_workload_fits_larger_pool_in_dense_budget(self, tiny_run):
        """The packed-coverage acceptance bar: the selection workload's pool
        is 4× the matrix pool, yet its packed masks occupy less memory than
        the base pool's dense masks."""
        by_name = {r.name: r for r in tiny_run}
        extra = by_name["selection"].extra
        assert extra["pool_multiplier"] >= 4
        assert extra["pool_size"] == 4 * by_name["masks"].samples
        assert extra["packed_mask_bytes"] <= extra["base_pool_dense_mask_bytes"]
        assert 0.0 < by_name["selection"].value <= 1.0

    def test_unknown_workload_rejected(self):
        model = small_cnn(rng=2)
        images = np.random.default_rng(3).random((4, *model.input_shape))
        with pytest.raises(ValueError):
            run_workloads(model, images, "numpy", "float64", workloads=["warp-drive"])

    def test_parallel_speedup_helper(self):
        results = [
            _result(name="forward", backend="numpy", wall_s=0.4),
            _result(name="forward", backend="parallel", wall_s=0.1),
        ]
        assert parallel_speedup(results) == {"forward": pytest.approx(4.0)}


class TestCli:
    def test_quick_run_writes_report_and_gates(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_engine.json"
        code = bench_main(
            [
                "--quick",
                "--output",
                str(out),
                "--pool-size",
                "6",
                "--repeats",
                "1",
                "--backends",
                "numpy",
                "--dtypes",
                "float64",
                "--workloads",
                "forward,coverage",
            ]
        )
        assert code == 0
        report = load_report(out)
        assert {r.name for r in report_results(report)} == {"forward", "coverage"}

        # same report as its own baseline -> gate passes
        code = bench_main(
            [
                "--quick",
                "--output",
                str(tmp_path / "second.json"),
                "--pool-size",
                "6",
                "--repeats",
                "1",
                "--backends",
                "numpy",
                "--dtypes",
                "float64",
                "--workloads",
                "forward",
                "--baseline",
                str(out),
                "--threshold",
                "1000",  # immune to machine noise
            ]
        )
        assert code == 0

    def test_gate_failure_and_env_skip(self, tmp_path, monkeypatch):
        from repro.bench import host_info

        # a baseline claiming everything ran in 1ns forces a "regression";
        # it must carry this host's fingerprint or the gate self-demotes
        current = tmp_path / "cur.json"
        impossible = {
            "schema": SCHEMA_VERSION,
            "host": host_info(),
            "results": [_result(name="forward", wall_s=1e-9, samples=6).to_dict()],
        }
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(impossible))
        args = [
            "--output",
            str(current),
            "--pool-size",
            "6",
            "--repeats",
            "1",
            "--backends",
            "numpy",
            "--dtypes",
            "float64",
            "--workloads",
            "forward",
            "--baseline",
            str(baseline),
        ]
        monkeypatch.delenv(ENV_SKIP_REGRESSION, raising=False)
        assert bench_main(args) == 1
        monkeypatch.setenv(ENV_SKIP_REGRESSION, "1")
        assert bench_main(args) == 0

    def test_gate_demotes_on_foreign_host_baseline(self, tmp_path, monkeypatch):
        """A baseline from a different machine can warn but never fail."""
        from repro.bench import hosts_comparable

        foreign = {
            "schema": SCHEMA_VERSION,
            "host": {"cores": 512, "machine": "riscv128", "platform": "plan9", "python": "4.0"},
            "results": [_result(name="forward", wall_s=1e-9, samples=6).to_dict()],
        }
        baseline = tmp_path / "foreign.json"
        baseline.write_text(json.dumps(foreign))
        monkeypatch.delenv(ENV_SKIP_REGRESSION, raising=False)
        code = bench_main(
            [
                "--output",
                str(tmp_path / "cur.json"),
                "--pool-size",
                "6",
                "--repeats",
                "1",
                "--backends",
                "numpy",
                "--dtypes",
                "float64",
                "--workloads",
                "forward",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert not hosts_comparable({"cores": 1}, {"cores": 2})
