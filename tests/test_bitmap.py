"""Tests for the packed coverage bitset representation.

The bar for :mod:`repro.coverage.bitmap` is *exact* equivalence with dense
boolean arrays: lossless pack/unpack round trips, popcounts equal to dense
sums, marginal-gain counts equal to dense ``(mask & ~covered).sum()``, and
argmax tie-breaking identical to dense ``np.argmax``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.bitmap import (
    CoverageMap,
    MaskMatrix,
    PackedCoverageTracker,
    as_coverage_map,
    num_words,
    pack_bool,
    packed_nbytes,
    popcount,
    popcount_rows,
    unpack_words,
)

#: bit widths probing every alignment edge: sub-word, word-aligned, word±1
EDGE_WIDTHS = [1, 7, 8, 63, 64, 65, 128, 130]


def random_dense(rng: np.random.Generator, *shape: int, p: float = 0.4) -> np.ndarray:
    return rng.random(shape) < p


class TestPackingPrimitives:
    def test_num_words(self):
        assert num_words(0) == 0
        assert num_words(1) == 1
        assert num_words(64) == 1
        assert num_words(65) == 2
        with pytest.raises(ValueError):
            num_words(-1)

    def test_packed_nbytes(self):
        assert packed_nbytes(64) == 8
        assert packed_nbytes(65) == 16
        assert packed_nbytes(100, rows=10) == 10 * 2 * 8

    @pytest.mark.parametrize("nbits", EDGE_WIDTHS)
    def test_roundtrip_1d(self, nbits):
        rng = np.random.default_rng(nbits)
        dense = random_dense(rng, nbits)
        words = pack_bool(dense)
        assert words.dtype == np.uint64
        assert words.shape == (num_words(nbits),)
        np.testing.assert_array_equal(unpack_words(words, nbits), dense)

    @pytest.mark.parametrize("nbits", EDGE_WIDTHS)
    def test_roundtrip_2d(self, nbits):
        rng = np.random.default_rng(nbits + 1)
        dense = random_dense(rng, 5, nbits)
        words = pack_bool(dense)
        assert words.shape == (5, num_words(nbits))
        np.testing.assert_array_equal(unpack_words(words, nbits), dense)

    def test_tail_bits_are_zero(self):
        words = pack_bool(np.ones(65, dtype=bool))
        # bits 65..127 of the second word must be zero
        assert words[1] == np.uint64(1)

    @pytest.mark.parametrize("nbits", EDGE_WIDTHS)
    def test_popcount_matches_dense_sum(self, nbits):
        rng = np.random.default_rng(nbits + 2)
        dense = random_dense(rng, nbits)
        assert popcount(pack_bool(dense)) == int(dense.sum())

    def test_popcount_rows_matches_dense(self):
        rng = np.random.default_rng(3)
        dense = random_dense(rng, 9, 130)
        np.testing.assert_array_equal(
            popcount_rows(pack_bool(dense)), dense.sum(axis=1)
        )

    def test_popcount_rows_rejects_1d(self):
        with pytest.raises(ValueError):
            popcount_rows(np.zeros(3, dtype=np.uint64))

    def test_unpack_checks_word_count(self):
        with pytest.raises(ValueError):
            unpack_words(np.zeros(2, dtype=np.uint64), 64)

    @given(bits=st.lists(st.booleans(), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, bits):
        dense = np.array(bits, dtype=bool)
        words = pack_bool(dense)
        np.testing.assert_array_equal(unpack_words(words, dense.size), dense)
        assert popcount(words) == int(dense.sum())


class TestCoverageMap:
    def test_starts_empty(self):
        cmap = CoverageMap(100)
        assert cmap.count() == 0
        assert not cmap.any()
        assert cmap.fraction == 0.0

    def test_from_dense_roundtrip(self):
        dense = random_dense(np.random.default_rng(0), 77)
        cmap = CoverageMap.from_dense(dense)
        np.testing.assert_array_equal(cmap.dense(), dense)
        assert cmap.count() == int(dense.sum())
        assert cmap.fraction == pytest.approx(dense.mean())

    def test_union_inplace_matches_dense_or(self):
        rng = np.random.default_rng(1)
        a, b = random_dense(rng, 70), random_dense(rng, 70)
        cmap = CoverageMap.from_dense(a)
        cmap.union_(CoverageMap.from_dense(b))
        np.testing.assert_array_equal(cmap.dense(), a | b)

    def test_pure_ops_match_dense(self):
        rng = np.random.default_rng(2)
        a, b = random_dense(rng, 130), random_dense(rng, 130)
        ma, mb = CoverageMap.from_dense(a), CoverageMap.from_dense(b)
        np.testing.assert_array_equal(ma.union(mb).dense(), a | b)
        np.testing.assert_array_equal(ma.intersection(mb).dense(), a & b)
        np.testing.assert_array_equal(ma.andnot(mb).dense(), a & ~b)
        np.testing.assert_array_equal(ma.complement().dense(), ~a)
        assert ma.intersection_count(mb) == int((a & b).sum())
        assert ma.andnot_count(mb) == int((a & ~b).sum())

    def test_andnot_count_multiple_exclusions(self):
        rng = np.random.default_rng(3)
        a, b, c = (random_dense(rng, 100) for _ in range(3))
        ma, mb, mc = (CoverageMap.from_dense(x) for x in (a, b, c))
        assert ma.andnot_count(mb, mc) == int((a & ~b & ~c).sum())

    def test_complement_tail_bits_stay_zero(self):
        cmap = CoverageMap(65)  # empty → complement sets all 65 logical bits
        comp = cmap.complement()
        assert comp.count() == 65

    def test_copy_is_independent(self):
        cmap = CoverageMap.from_dense(np.ones(10, dtype=bool))
        other = cmap.copy()
        other.clear_()
        assert cmap.count() == 10 and other.count() == 0

    def test_equality(self):
        a = CoverageMap.from_dense(np.array([True, False, True]))
        b = CoverageMap.from_dense(np.array([True, False, True]))
        c = CoverageMap.from_dense(np.array([True, True, True]))
        assert a == b and a != c

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            CoverageMap(10).union_(CoverageMap(11))
        with pytest.raises(TypeError):
            CoverageMap(10).union_(np.zeros(10, dtype=bool))  # type: ignore[arg-type]

    def test_as_coverage_map_coercion(self):
        dense = np.array([True, False, True, False])
        cmap = as_coverage_map(dense, 4)
        np.testing.assert_array_equal(cmap.dense(), dense)
        assert as_coverage_map(cmap, 4) is cmap
        with pytest.raises(ValueError):
            as_coverage_map(dense, 5)
        with pytest.raises(ValueError):
            as_coverage_map(cmap, 5)


class TestMaskMatrix:
    def test_from_dense_roundtrip(self):
        dense = random_dense(np.random.default_rng(4), 6, 90)
        matrix = MaskMatrix.from_dense(dense)
        assert len(matrix) == 6
        assert matrix.shape == (6, 90)
        np.testing.assert_array_equal(matrix.dense(), dense)
        for i in range(6):
            np.testing.assert_array_equal(matrix.dense_row(i), dense[i])
            np.testing.assert_array_equal(matrix.row(i).dense(), dense[i])

    def test_memory_ratio(self):
        dense = random_dense(np.random.default_rng(5), 16, 512)
        matrix = MaskMatrix.from_dense(dense)
        assert matrix.dense_nbytes == 16 * 512
        # 512 bits = 8 words = 64 bytes per row: exactly 1/8 dense
        assert matrix.nbytes * 8 == matrix.dense_nbytes

    def test_from_chunks_equals_from_dense(self):
        dense = random_dense(np.random.default_rng(6), 10, 70)
        chunked = MaskMatrix.from_chunks([dense[:3], dense[3:4], dense[4:]], 70)
        assert chunked == MaskMatrix.from_dense(dense)

    def test_from_chunks_empty(self):
        assert len(MaskMatrix.from_chunks([], 70)) == 0

    def test_row_is_independent_copy(self):
        dense = random_dense(np.random.default_rng(7), 3, 64)
        matrix = MaskMatrix.from_dense(dense)
        row = matrix.row(0)
        row.clear_()
        np.testing.assert_array_equal(matrix.dense_row(0), dense[0])

    def test_counts_and_fractions(self):
        dense = random_dense(np.random.default_rng(8), 5, 100)
        matrix = MaskMatrix.from_dense(dense)
        np.testing.assert_array_equal(matrix.counts(), dense.sum(axis=1))
        np.testing.assert_allclose(matrix.fractions(), dense.mean(axis=1))

    def test_union_matches_dense_any(self):
        dense = random_dense(np.random.default_rng(9), 7, 130)
        matrix = MaskMatrix.from_dense(dense)
        np.testing.assert_array_equal(matrix.union().dense(), dense.any(axis=0))

    def test_union_of_empty_matrix(self):
        assert MaskMatrix.empty(50).union().count() == 0

    def test_marginal_counts_match_dense(self):
        rng = np.random.default_rng(10)
        dense = random_dense(rng, 8, 200)
        covered = random_dense(rng, 200)
        matrix = MaskMatrix.from_dense(dense)
        expected = (dense & ~covered[None, :]).sum(axis=1)
        np.testing.assert_array_equal(
            matrix.marginal_counts(CoverageMap.from_dense(covered)), expected
        )

    def test_take(self):
        dense = random_dense(np.random.default_rng(11), 6, 64)
        matrix = MaskMatrix.from_dense(dense)
        sub = matrix.take([4, 0, 2])
        np.testing.assert_array_equal(sub.dense(), dense[[4, 0, 2]])

    def test_concatenate(self):
        dense = random_dense(np.random.default_rng(12), 5, 65)
        a, b = MaskMatrix.from_dense(dense[:2]), MaskMatrix.from_dense(dense[2:])
        assert MaskMatrix.concatenate([a, b]) == MaskMatrix.from_dense(dense)

    def test_best_candidate_matches_dense_argmax(self):
        rng = np.random.default_rng(13)
        dense = random_dense(rng, 12, 150)
        covered = random_dense(rng, 150, p=0.5)
        matrix = MaskMatrix.from_dense(dense)
        cmap = CoverageMap.from_dense(covered)
        gains = (dense & ~covered[None, :]).sum(axis=1)
        best, count = matrix.best_candidate(cmap)
        assert best == int(np.argmax(gains))
        assert count == int(gains[best])

    def test_best_candidate_tie_breaks_to_lowest_index(self):
        # duplicated masks: identical gains must resolve to the first index,
        # matching dense np.argmax semantics
        row = random_dense(np.random.default_rng(14), 80)
        dense = np.stack([row, row, row])
        matrix = MaskMatrix.from_dense(dense)
        best, _ = matrix.best_candidate(CoverageMap(80))
        assert best == 0
        # with the first unavailable, the tie moves to the next lowest index
        best, _ = matrix.best_candidate(
            CoverageMap(80), available=np.array([False, True, True])
        )
        assert best == 1

    def test_best_candidate_all_zero_gains_with_availability(self):
        # regression: an all-covered pool has all-zero gains; availability is
        # explicit, so the argmax can never alias into unavailable candidates
        dense = random_dense(np.random.default_rng(15), 4, 60)
        matrix = MaskMatrix.from_dense(dense)
        everything = CoverageMap.from_dense(np.ones(60, dtype=bool))
        available = np.array([False, False, True, True])
        best, count = matrix.best_candidate(everything, available)
        assert best == 2 and count == 0

    def test_best_candidate_none_available_raises(self):
        matrix = MaskMatrix.from_dense(np.ones((2, 10), dtype=bool))
        with pytest.raises(ValueError, match="no candidates available"):
            matrix.best_candidate(CoverageMap(10), np.zeros(2, dtype=bool))
        with pytest.raises(ValueError):
            MaskMatrix.empty(10).best_candidate(CoverageMap(10))

    def test_shape_validation(self):
        matrix = MaskMatrix.from_dense(np.ones((3, 10), dtype=bool))
        with pytest.raises(ValueError):
            matrix.marginal_counts(CoverageMap(11))
        with pytest.raises(ValueError):
            matrix.best_candidate(CoverageMap(10), np.ones(4, dtype=bool))

    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=8),
        nbits=st.integers(min_value=1, max_value=150),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_equivalence_property(self, data, n, nbits):
        """Full greedy runs on random pools: packed == dense, step by step."""
        dense = np.array(
            [
                data.draw(st.lists(st.booleans(), min_size=nbits, max_size=nbits))
                for _ in range(n)
            ],
            dtype=bool,
        )
        matrix = MaskMatrix.from_dense(dense)
        covered_dense = np.zeros(nbits, dtype=bool)
        covered = CoverageMap(nbits)
        available = np.ones(n, dtype=bool)
        for _ in range(n):
            # dense reference step (sentinel-style, as the old loops did)
            gains = (dense & ~covered_dense[None, :]).sum(axis=1).astype(float)
            gains[~available] = -1.0
            expected = int(np.argmax(gains))
            best, _ = matrix.best_candidate(covered, available)
            assert best == expected
            covered_dense |= dense[best]
            covered.union_(matrix.row(best))
            available[best] = False
            np.testing.assert_array_equal(covered.dense(), covered_dense)


class _StubTracker(PackedCoverageTracker):
    pass


class TestPackedCoverageTracker:
    def test_requires_positive_total(self):
        with pytest.raises(ValueError):
            _StubTracker(0)

    def test_union_and_gain_accounting(self):
        rng = np.random.default_rng(16)
        tracker = _StubTracker(120)
        union = np.zeros(120, dtype=bool)
        total_gain = 0.0
        for _ in range(5):
            mask = random_dense(rng, 120)
            gain = tracker.add_mask(mask)
            assert gain == pytest.approx((mask & ~union).sum() / 120)
            union |= mask
            total_gain += gain
        assert tracker.num_tests == 5
        assert tracker.num_covered == int(union.sum())
        assert tracker.coverage == pytest.approx(total_gain)
        np.testing.assert_array_equal(tracker.covered_mask, union)
        np.testing.assert_array_equal(
            tracker.uncovered_indices(), np.flatnonzero(~union)
        )

    def test_accepts_packed_masks(self):
        tracker = _StubTracker(64)
        mask = CoverageMap.from_dense(np.arange(64) % 2 == 0)
        assert tracker.add_mask(mask) == pytest.approx(0.5)
        assert tracker.marginal_gain(mask) == 0.0

    def test_reset(self):
        tracker = _StubTracker(10)
        tracker.add_mask(np.ones(10, dtype=bool))
        tracker.reset()
        assert tracker.num_covered == 0 and tracker.num_tests == 0

    def test_mask_size_validation(self):
        tracker = _StubTracker(10)
        with pytest.raises(ValueError):
            tracker.add_mask(np.ones(11, dtype=bool))
