"""Tests for the campaign subsystem: spec expansion, store semantics,
resumable execution, drift detection, registries and the CLI.

The runner tests share one tiny campaign (24 training images, 1 epoch,
2 trials) via a module-scoped fixture so the expensive train/package work
happens once; resume/determinism assertions replay it into fresh stores.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    Scenario,
    ScenarioRecord,
    derive_scenario_seed,
    diff_against_expectations,
    expectations_from_records,
    run_campaign,
)
from repro.campaign.runner import CampaignRunner
from repro.coverage.activation import ActivationCriterion, resolve_criterion
from repro.models.zoo import small_mlp
from repro.registry import registry
from repro.testgen.strategies import build_generator


def available_strategies():
    return registry.names("strategies")


def get_strategy(name):
    return registry.get("strategies", name)


def _toml_available() -> bool:
    try:
        import tomllib  # noqa: F401
    except ModuleNotFoundError:
        try:
            import tomli  # noqa: F401
        except ModuleNotFoundError:
            return False
    return True


#: the dev extras install tomli on <3.11, so CI always runs these; the skip
#: only guards bare interpreters
requires_toml = pytest.mark.skipif(
    not _toml_available(), reason="needs tomllib (3.11+) or the tomli backport"
)


def tiny_spec(**overrides: object) -> CampaignSpec:
    """A campaign small enough to execute inside a unit test."""
    base = dict(
        name="tiny",
        attacks=("sba", "random"),
        models=("mnist",),
        criteria=("default",),
        strategies=("random",),
        budgets=(2, 3),
        trials=2,
        train_size=24,
        test_size=12,
        epochs=1,
        width_multiplier=0.08,
        candidate_pool=12,
        gradient_updates=3,
        reference_inputs=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# spec expansion
# ---------------------------------------------------------------------------


class TestSpecExpansion:
    def test_cross_product_size_and_order(self):
        spec = tiny_spec()
        scenarios = spec.expand()
        assert len(scenarios) == 2 * 1 * 1 * 1 * 2
        # nested axis order: model, attack, criterion, strategy, budget
        assert [s.key for s in scenarios] == [
            ("mnist", "sba", "default", "random", 2),
            ("mnist", "sba", "default", "random", 3),
            ("mnist", "random", "default", "random", 2),
            ("mnist", "random", "default", "random", 3),
        ]

    @pytest.mark.parametrize(
        "axis", ["attacks", "models", "criteria", "strategies", "budgets"]
    )
    def test_empty_axis_rejected(self, axis):
        with pytest.raises(ValueError, match="is empty"):
            tiny_spec(**{axis: ()}).expand()

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError, match="unknown attacks"):
            tiny_spec(attacks=("sba", "meteor")).validate()
        with pytest.raises(ValueError, match="unknown models"):
            tiny_spec(models=("mnist", "imagenet")).validate()
        with pytest.raises(ValueError, match="unknown strategies"):
            tiny_spec(strategies=("combined", "psychic")).validate()
        with pytest.raises(ValueError, match="unknown criterion"):
            tiny_spec(criteria=("default", "vibes")).validate()

    def test_duplicate_axis_values_dedupe_by_digest(self):
        plain = tiny_spec().expand()
        doubled = tiny_spec(
            attacks=("sba", "sba", "random"), budgets=(2, 3, 2)
        ).expand()
        assert [s.digest for s in doubled] == [s.digest for s in plain]

    def test_scenario_seeds_unique_and_deterministic(self):
        spec = tiny_spec()
        first = spec.expand()
        second = spec.expand()
        assert [s.seed for s in first] == [s.seed for s in second]
        assert len({s.seed for s in first}) == len(first)

    def test_seed_depends_on_spec_seed_and_coordinates(self):
        a = derive_scenario_seed(0, "mnist", "sba", "default", "combined", 10)
        b = derive_scenario_seed(1, "mnist", "sba", "default", "combined", 10)
        c = derive_scenario_seed(0, "mnist", "sba", "default", "combined", 20)
        assert a != b and a != c
        assert a == derive_scenario_seed(0, "mnist", "sba", "default", "combined", 10)

    def test_seeds_are_stable_across_processes(self):
        """SHA-256 derivation must not depend on PYTHONHASHSEED."""
        spec = tiny_spec()
        expected = [(s.seed, s.digest) for s in spec.expand()]
        code = (
            "import json, sys\n"
            "from repro.campaign import CampaignSpec\n"
            "spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(json.dumps([[s.seed, s.digest] for s in spec.expand()]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, json.dumps(spec.to_dict())],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
                 "PYTHONHASHSEED": "12345"},
        )
        assert [tuple(x) for x in json.loads(out.stdout)] == expected

    def test_digest_covers_outcome_relevant_knobs(self):
        base = {s.key: s.digest for s in tiny_spec().expand()}
        for change in (
            {"seed": 9},
            {"trials": 3},
            {"train_size": 30},
            {"output_atol": 1e-5},
            {"budgets": (2, 3, 5)},  # max budget changes every prefix
        ):
            changed = {s.key: s.digest for s in tiny_spec(**change).expand()}
            for key in base:
                if key in changed:
                    assert changed[key] != base[key], (change, key)

    def test_name_is_a_label_not_an_input(self):
        base = [s.digest for s in tiny_spec().expand()]
        renamed = [s.digest for s in tiny_spec(name="other").expand()]
        assert base == renamed

    def test_validation_bounds(self):
        with pytest.raises(ValueError, match="budgets must be positive"):
            tiny_spec(budgets=(0,)).validate()
        with pytest.raises(ValueError, match="trials must be positive"):
            tiny_spec(trials=0).validate()
        with pytest.raises(ValueError, match="reference_inputs cannot exceed"):
            tiny_spec(reference_inputs=99).validate()

    def test_criterion_suffix_forms(self):
        model = small_mlp(input_features=4, hidden_units=4, num_classes=2, rng=0)
        assert resolve_criterion("exact", model) == ActivationCriterion(0.0, "sum")
        assert resolve_criterion("eps:1e-3@max", model) == ActivationCriterion(
            1e-3, "max"
        )
        assert resolve_criterion("default", model).scalarization == "sum"
        with pytest.raises(ValueError, match="invalid criterion epsilon"):
            resolve_criterion("eps:nope", model)


class TestSpecSerialization:
    @requires_toml
    def test_toml_and_json_roundtrip(self, tmp_path):
        spec = tiny_spec()
        json_path = spec.save(tmp_path / "spec.json")
        assert CampaignSpec.load(json_path) == spec

        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            "[campaign]\n"
            'name = "tiny"\n'
            'attacks = ["sba", "random"]\n'
            'models = ["mnist"]\n'
            'criteria = ["default"]\n'
            'strategies = ["random"]\n'
            "budgets = [2, 3]\n"
            "trials = 2\n"
            "train_size = 24\n"
            "test_size = 12\n"
            "epochs = 1\n"
            "width_multiplier = 0.08\n"
            "candidate_pool = 12\n"
            "gradient_updates = 3\n"
            "reference_inputs = 6\n",
            encoding="utf-8",
        )
        assert CampaignSpec.load(toml_path) == spec

    def test_unknown_fields_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"attacks": ["sba"], "warp": 9}), encoding="utf-8")
        with pytest.raises(ValueError, match="unknown campaign spec fields"):
            CampaignSpec.load(path)

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("attacks: [sba]", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported spec format"):
            CampaignSpec.load(path)

    @requires_toml
    def test_stray_keys_outside_campaign_table_rejected(self, tmp_path):
        """A knob typed above the [campaign] header must error, not silently
        fall back to its default."""
        path = tmp_path / "spec.toml"
        path.write_text(
            "trials = 100\n"
            "[campaign]\n"
            'attacks = ["sba"]\n'
            'models = ["mnist"]\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="outside the \\[campaign\\] table"):
            CampaignSpec.load(path)

    @requires_toml
    def test_ci_pinned_spec_loads_and_covers_the_paper_matrix(self):
        """The committed CI spec must keep all four attack families on both
        Table-I architectures (the acceptance bar of the campaign PR)."""
        root = Path(__file__).resolve().parents[1]
        spec = CampaignSpec.load(root / ".github" / "campaign" / "ci_matrix.toml")
        assert set(spec.attacks) == {"sba", "gda", "random", "bitflip"}
        assert set(spec.models) == {"mnist", "cifar"}
        assert len(spec.criteria) >= 2


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------


def _record(digest: str = "d" * 64, detections: int = 1) -> ScenarioRecord:
    return ScenarioRecord(
        digest=digest,
        scenario={
            "model": "mnist",
            "attack": "sba",
            "criterion": "default",
            "strategy": "random",
            "budget": 2,
        },
        seed=42,
        trials=2,
        detections=detections,
        coverage=0.5,
    )


class TestResultStore:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(_record("a" * 64))
        store.append(_record("b" * 64, detections=2))
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.completed_digests() == {"a" * 64, "b" * 64}
        assert reloaded.get("b" * 64).detection_rate == pytest.approx(1.0)
        assert "a" * 64 in reloaded

    def test_double_append_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.append(_record())
        with pytest.raises(ValueError, match="already in the store"):
            store.append(_record())

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(_record("a" * 64))
        full_line = _record("b" * 64).to_json_line()
        with path.open("a", encoding="utf-8") as fh:
            fh.write(full_line[: len(full_line) // 2])  # torn mid-record
        torn_bytes = path.read_bytes()

        recovered = ResultStore(path)
        assert recovered.completed_digests() == {"a" * 64}
        # loading is a pure read: repair is deferred until the next append,
        # so read-only stores can still be reported/diffed
        assert path.read_bytes() == torn_bytes
        recovered.append(_record("c" * 64))
        assert ResultStore(path).completed_digests() == {"a" * 64, "c" * 64}
        # ... and the torn tail is gone after the repairing append
        assert full_line[: len(full_line) // 2] not in path.read_text(
            encoding="utf-8"
        )

    def test_newline_terminated_corrupt_final_line_raises(self, tmp_path):
        """A complete (newline-terminated) line that fails to parse is
        corruption, not a torn append — it must raise, never be repaired."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(_record("a" * 64))
        with path.open("a", encoding="utf-8") as fh:
            fh.write("{not json}\n")
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(path)

    def test_complete_but_invalid_final_record_raises(self, tmp_path):
        """Only torn (unparseable) tails are repaired away; a final line
        that parses as JSON but fails record validation must raise, never
        be silently deleted."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(_record("a" * 64))
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"digest": "x", "trials": "many"}) + "\n")
        before = path.read_bytes()
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(path)
        assert path.read_bytes() == before  # nothing was erased

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(_record("a" * 64))
        text = path.read_text(encoding="utf-8")
        path.write_text("not json\n" + text, encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(path)

    def test_expectations_roundtrip_and_drift(self):
        records = [_record("a" * 64, detections=1), _record("b" * 64, detections=2)]
        doc = expectations_from_records(records)
        assert diff_against_expectations(records, doc) == []

        drifted = [_record("a" * 64, detections=0), _record("b" * 64, detections=2)]
        drifts = diff_against_expectations(drifted, doc)
        assert len(drifts) == 1 and "detection drift" in drifts[0]

        drifts = diff_against_expectations(records[:1], doc)
        assert len(drifts) == 1 and "missing scenario" in drifts[0]

        drifts = diff_against_expectations(
            records + [_record("c" * 64)], doc
        )
        assert len(drifts) == 1 and "unexpected scenario" in drifts[0]


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert set(available_strategies()) >= {
            "combined",
            "selection",
            "gradient",
            "neuron",
            "random",
        }

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("psychic")

    def test_knob_declarations(self):
        assert registry.knobs("strategies", "combined") == {
            "candidate_pool": "candidate_pool",
            "max_updates": "gradient_updates",
        }
        assert registry.knobs("strategies", "random") == {}
        with pytest.raises(ValueError, match="unknown strategy"):
            registry.knobs("strategies", "psychic")

    def test_runner_rejects_knob_without_spec_field(self):
        """A registered strategy declaring a knob CampaignSpec lacks must
        fail with a clear error, not an AttributeError."""
        from repro.campaign.runner import _generator_kwargs

        name = "test-bad-knob"
        registry.register(
            "strategies",
            name,
            lambda *a, **k: None,
            knobs={"zap": "no_such_field"},
        )
        try:
            with pytest.raises(ValueError, match="does not define"):
                _generator_kwargs(tiny_spec(), name)
        finally:
            registry.unregister("strategies", name)

    def test_build_generator_requires_dataset_where_needed(self, trained_mlp):
        with pytest.raises(ValueError, match="requires a training set"):
            build_generator("random", trained_mlp, None)

    def test_build_generator_builds_each_strategy(self, trained_cnn, digit_dataset):
        for name in ("random", "selection", "gradient"):
            gen = build_generator(name, trained_cnn, digit_dataset, rng=0)
            result = gen.generate(2)
            assert result.num_tests == 2


# ---------------------------------------------------------------------------
# runner end to end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def executed_campaign(tmp_path_factory):
    """One executed tiny campaign: (spec, store path, summary)."""
    spec = tiny_spec()
    path = tmp_path_factory.mktemp("campaign") / "results.jsonl"
    summary = run_campaign(spec, str(path))
    return spec, path, summary


class TestRunner:
    def test_executes_every_scenario_once(self, executed_campaign):
        spec, path, summary = executed_campaign
        scenarios = spec.expand()
        assert summary.executed == len(scenarios)
        assert summary.skipped == 0
        store = ResultStore(path)
        assert store.completed_digests() == {s.digest for s in scenarios}
        for record in store.records():
            assert record.trials == spec.trials
            assert 0 <= record.detections <= record.trials
            assert 0.0 <= record.coverage <= 1.0

    def test_second_invocation_executes_zero(self, executed_campaign):
        spec, path, _ = executed_campaign
        before = path.read_bytes()
        summary = run_campaign(spec, str(path))
        assert summary.executed == 0
        assert summary.skipped == len(spec.expand())
        assert path.read_bytes() == before  # byte-identical store

    def test_fresh_run_is_byte_identical(self, executed_campaign, tmp_path):
        spec, path, _ = executed_campaign
        other = tmp_path / "other.jsonl"
        run_campaign(spec, str(other))
        assert other.read_bytes() == path.read_bytes()

    def test_resume_after_partial_store(self, executed_campaign, tmp_path):
        """Dropping a suffix of the store and re-running reproduces the
        full store byte-for-byte — interrupted campaigns lose nothing."""
        spec, path, _ = executed_campaign
        full = path.read_text(encoding="utf-8")
        lines = full.splitlines(keepends=True)
        partial = tmp_path / "partial.jsonl"
        partial.write_text("".join(lines[:1]), encoding="utf-8")

        summary = run_campaign(spec, str(partial))
        assert summary.skipped == 1
        assert summary.executed == len(spec.expand()) - 1
        assert partial.read_text(encoding="utf-8") == full

    def test_resume_after_interior_gap(self, executed_campaign, tmp_path):
        """A non-suffix gap still resumes to the same *records*, appended
        at the end (append-only stores never rewrite history)."""
        spec, path, _ = executed_campaign
        lines = path.read_text(encoding="utf-8").splitlines()
        gap = tmp_path / "gap.jsonl"
        gap.write_text("\n".join(lines[:1] + lines[2:]) + "\n", encoding="utf-8")

        summary = run_campaign(spec, str(gap))
        assert summary.executed == 1
        by_digest = {r.digest: r.to_json_line() for r in ResultStore(gap).records()}
        expected = {r.digest: r.to_json_line() for r in ResultStore(path).records()}
        assert by_digest == expected

    def test_progress_callback_receives_lines(self, tmp_path):
        spec = tiny_spec(attacks=("sba",), budgets=(2,))
        lines = []
        run_campaign(spec, str(tmp_path / "s.jsonl"), progress=lines.append)
        assert any("training victim" in line for line in lines)
        assert any("package" in line for line in lines)

    def test_runner_validates_spec(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="is empty"):
            CampaignRunner(tiny_spec(attacks=()), store)

    def test_workers_requires_parallel_backend(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="backend='parallel'"):
            CampaignRunner(tiny_spec(), store, backend="numpy", workers=4)


# ---------------------------------------------------------------------------
# aggregation + CLI
# ---------------------------------------------------------------------------


class TestReporting:
    def test_report_covers_axes(self, executed_campaign):
        from repro.analysis.campaign import (
            campaign_csv,
            coverage_summary_rows,
            render_campaign_report,
        )

        _, path, _ = executed_campaign
        records = ResultStore(path).records()
        report = render_campaign_report(records)
        assert "model `mnist`" in report
        assert "random:sba" in report  # strategy:attack column
        csv_text = campaign_csv(records)
        assert csv_text.count("\n") == len(records) + 1

        rows = coverage_summary_rows(records)
        # coverage collapses the attack axis: budgets × strategies rows only
        assert len(rows) == 2

    def test_empty_report_rejected(self):
        from repro.analysis.campaign import render_campaign_report

        with pytest.raises(ValueError, match="no records"):
            render_campaign_report([])


class TestCli:
    def test_run_report_expectations_diff(self, executed_campaign, tmp_path):
        from repro.campaign.__main__ import main

        spec, store_path, _ = executed_campaign
        spec_path = spec.save(tmp_path / "spec.json")

        # resume via the CLI: exits 0, report written
        report_path = tmp_path / "report.md"
        assert (
            main(
                [
                    "run",
                    "--spec",
                    str(spec_path),
                    "--store",
                    str(store_path),
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        assert "Campaign report" in report_path.read_text(encoding="utf-8")

        exp_path = tmp_path / "exp.json"
        assert main(
            ["expectations", "--store", str(store_path), "--out", str(exp_path)]
        ) == 0
        assert main(
            ["diff", "--store", str(store_path), "--expectations", str(exp_path)]
        ) == 0

        doc = json.loads(exp_path.read_text(encoding="utf-8"))
        digest = next(iter(doc["scenarios"]))
        doc["scenarios"][digest]["detections"] += 1
        exp_path.write_text(json.dumps(doc), encoding="utf-8")
        assert main(
            ["diff", "--store", str(store_path), "--expectations", str(exp_path)]
        ) == 1

    def test_report_of_empty_store_fails(self, tmp_path):
        from repro.campaign.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["report", "--store", str(empty)]) == 1


class TestAttackRecordSerialization:
    def test_perturbation_record_roundtrip(self):
        from repro.attacks.base import PerturbationRecord

        record = PerturbationRecord(
            attack="sba",
            flat_indices=np.array([3, 7]),
            deltas=np.array([0.5, -1.5]),
            parameter_names=["fc1/bias", "fc1/bias"],
            metadata={"magnitude": 10.0},
        )
        rebuilt = PerturbationRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert rebuilt.attack == "sba"
        np.testing.assert_array_equal(rebuilt.flat_indices, record.flat_indices)
        np.testing.assert_array_equal(rebuilt.deltas, record.deltas)
        assert rebuilt.parameter_names == record.parameter_names
        assert rebuilt.metadata == {"magnitude": 10.0}
