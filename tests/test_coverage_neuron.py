"""Tests for the neuron-coverage baseline metric."""

import numpy as np
import pytest

from repro.coverage import (
    NeuronCoverageTracker,
    NeuronMaskCache,
    count_neurons,
    neuron_activation_mask,
    neuron_coverage,
)
from repro.models.zoo import small_cnn, small_mlp


class TestCounting:
    def test_count_neurons_mlp(self):
        model = small_mlp(input_features=6, hidden_units=9, num_classes=4, depth=2, rng=0)
        # two hidden dense layers of 9 units plus the 4 logits
        assert count_neurons(model) == 9 + 9 + 4

    def test_count_neurons_cnn(self):
        model = small_cnn(
            channels=3, dense_units=8, input_shape=(1, 8, 8), num_classes=5, rng=0
        )
        # conv output 3x8x8, dense 8, logits 5 (pooling/flatten add none)
        assert count_neurons(model) == 3 * 8 * 8 + 8 + 5


class TestMask:
    def test_mask_shape_and_dtype(self, trained_cnn, digit_dataset):
        mask = neuron_activation_mask(trained_cnn, digit_dataset.images[0])
        assert mask.shape == (count_neurons(trained_cnn),)
        assert mask.dtype == bool

    def test_threshold_reduces_activations(self, trained_cnn, digit_dataset):
        x = digit_dataset.images[0]
        low = neuron_activation_mask(trained_cnn, x, threshold=0.0).sum()
        high = neuron_activation_mask(trained_cnn, x, threshold=1.0).sum()
        assert high <= low

    def test_some_relu_neurons_inactive(self, trained_cnn, digit_dataset):
        mask = neuron_activation_mask(trained_cnn, digit_dataset.images[0])
        assert 0 < mask.sum() < mask.size


class TestCoverageAndTracker:
    def test_neuron_coverage_monotone(self, trained_cnn, digit_dataset):
        few = neuron_coverage(trained_cnn, digit_dataset.images[:2])
        many = neuron_coverage(trained_cnn, digit_dataset.images[:8])
        assert 0.0 < few <= many <= 1.0

    def test_tracker_matches_batch_function(self, trained_cnn, digit_dataset):
        tests = digit_dataset.images[:5]
        tracker = NeuronCoverageTracker(trained_cnn)
        for t in tests:
            tracker.add_sample(t)
        assert tracker.coverage == pytest.approx(neuron_coverage(trained_cnn, tests))

    def test_marginal_gain_and_reset(self, trained_cnn, digit_dataset):
        tracker = NeuronCoverageTracker(trained_cnn)
        gain = tracker.add_sample(digit_dataset.images[0])
        assert gain == pytest.approx(tracker.coverage)
        assert tracker.marginal_gain_of_sample(digit_dataset.images[0]) == 0.0
        tracker.reset()
        assert tracker.coverage == 0.0

    def test_mask_size_validation(self, trained_cnn):
        tracker = NeuronCoverageTracker(trained_cnn)
        with pytest.raises(ValueError):
            tracker.add_mask(np.ones(2, dtype=bool))


class TestNeuronMaskCache:
    def test_cache_matches_direct_masks(self, trained_cnn, digit_dataset):
        images = digit_dataset.images[:4]
        cache = NeuronMaskCache(trained_cnn, images)
        assert len(cache) == 4
        for i in range(4):
            np.testing.assert_array_equal(
                cache.masks[i], neuron_activation_mask(trained_cnn, images[i])
            )

    def test_marginal_gains_shape_validation(self, trained_cnn, digit_dataset):
        cache = NeuronMaskCache(trained_cnn, digit_dataset.images[:2])
        with pytest.raises(ValueError):
            cache.marginal_gains(np.zeros(3, dtype=bool))


class TestNeuronVsParameterCoverage:
    def test_full_neuron_coverage_does_not_imply_full_parameter_coverage(
        self, trained_cnn, digit_dataset
    ):
        """The paper's core argument (Section II-B): covering every neuron can
        still leave parameters unvalidated."""
        from repro.coverage import set_validation_coverage

        tests = digit_dataset.images[:30]
        ncov = neuron_coverage(trained_cnn, tests)
        pcov = set_validation_coverage(trained_cnn, tests)
        # neuron coverage saturates faster than parameter coverage on ReLU CNNs
        assert ncov > pcov or pcov < 1.0
