"""Tests for the validation-coverage metric (activation criterion, VC(x),
VC(X), trackers and the mask cache)."""

import numpy as np
import pytest

from repro.coverage import (
    ActivationCriterion,
    ActivationMaskCache,
    CoverageTracker,
    activation_mask,
    average_sample_coverage,
    default_criterion_for,
    set_validation_coverage,
    validation_coverage,
)
from repro.models.zoo import small_cnn, small_mlp


class TestActivationCriterion:
    def test_exact_zero_criterion(self):
        crit = ActivationCriterion(epsilon=0.0)
        grads = np.array([0.0, 1e-30, -2.0])
        np.testing.assert_array_equal(crit.activated(grads), [False, True, True])

    def test_epsilon_criterion(self):
        crit = ActivationCriterion(epsilon=1e-3)
        grads = np.array([0.0, 5e-4, -2e-3])
        np.testing.assert_array_equal(crit.activated(grads), [False, False, True])

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationCriterion(epsilon=-1.0)
        with pytest.raises(ValueError):
            ActivationCriterion(scalarization="median")

    def test_default_criterion_relu_vs_tanh(self, trained_cnn, trained_tanh_cnn):
        relu_crit = default_criterion_for(trained_cnn)
        tanh_crit = default_criterion_for(trained_tanh_cnn)
        assert relu_crit.epsilon == 0.0
        assert tanh_crit.epsilon > 0.0


class TestActivationMask:
    def test_mask_shape_matches_parameter_count(self, trained_cnn, digit_dataset):
        mask = activation_mask(trained_cnn, digit_dataset.images[0])
        assert mask.shape == (trained_cnn.num_parameters(),)
        assert mask.dtype == bool

    def test_relu_network_leaves_some_parameters_unactivated(
        self, trained_cnn, digit_dataset
    ):
        mask = activation_mask(trained_cnn, digit_dataset.images[0])
        assert 0.0 < mask.mean() < 1.0

    def test_mask_is_deterministic(self, trained_cnn, digit_dataset):
        x = digit_dataset.images[3]
        np.testing.assert_array_equal(
            activation_mask(trained_cnn, x), activation_mask(trained_cnn, x)
        )

    def test_mask_detects_dead_relu_path(self):
        """A hidden unit that never fires must leave its incoming weights unactivated."""
        model = small_mlp(input_features=4, hidden_units=3, num_classes=2, depth=1, rng=0)
        view = model.parameter_view()
        # force hidden unit 0 to be dead: zero incoming weights, very negative bias
        fc1_w = view.parameters[0]
        fc1_b = view.parameters[1]
        fc1_w.value[:, 0] = 0.0
        fc1_b.value[0] = -100.0
        x = np.abs(np.random.default_rng(0).random(4))
        mask = activation_mask(model, x, ActivationCriterion(epsilon=0.0))
        # incoming weights of the dead unit are the first column of fc1/weight
        incoming = np.zeros_like(fc1_w.value, dtype=bool)
        incoming[:, 0] = True
        assert not mask[: fc1_w.size].reshape(fc1_w.value.shape)[incoming].any()


class TestValidationCoverage:
    def test_single_sample_coverage_in_unit_interval(self, trained_cnn, digit_dataset):
        vc = validation_coverage(trained_cnn, digit_dataset.images[0])
        assert 0.0 < vc < 1.0

    def test_set_coverage_at_least_best_single(self, trained_cnn, digit_dataset):
        tests = digit_dataset.images[:5]
        singles = [validation_coverage(trained_cnn, t) for t in tests]
        combined = set_validation_coverage(trained_cnn, tests)
        assert combined >= max(singles) - 1e-12

    def test_set_coverage_monotone_in_tests(self, trained_cnn, digit_dataset):
        small = set_validation_coverage(trained_cnn, digit_dataset.images[:2])
        large = set_validation_coverage(trained_cnn, digit_dataset.images[:6])
        assert large >= small - 1e-12

    def test_average_sample_coverage(self, trained_cnn, digit_dataset):
        avg = average_sample_coverage(trained_cnn, digit_dataset.images[:4])
        singles = [validation_coverage(trained_cnn, x) for x in digit_dataset.images[:4]]
        assert avg == pytest.approx(np.mean(singles))

    def test_average_sample_coverage_empty_raises(self, trained_cnn):
        with pytest.raises(ValueError):
            average_sample_coverage(trained_cnn, np.zeros((0, 1, 12, 12)))

    def test_larger_epsilon_never_increases_coverage(self, trained_tanh_cnn, digit_dataset):
        x = digit_dataset.images[0]
        small_eps = validation_coverage(
            trained_tanh_cnn, x, ActivationCriterion(epsilon=1e-6)
        )
        large_eps = validation_coverage(
            trained_tanh_cnn, x, ActivationCriterion(epsilon=1e-1)
        )
        assert large_eps <= small_eps


class TestCoverageTracker:
    def test_incremental_union_matches_batch_computation(self, trained_cnn, digit_dataset):
        tests = digit_dataset.images[:4]
        tracker = CoverageTracker(trained_cnn)
        for t in tests:
            tracker.add_sample(t)
        assert tracker.coverage == pytest.approx(
            set_validation_coverage(trained_cnn, tests)
        )
        assert tracker.num_tests == 4

    def test_marginal_gain_consistency(self, trained_cnn, digit_dataset):
        tracker = CoverageTracker(trained_cnn)
        tracker.add_sample(digit_dataset.images[0])
        before = tracker.coverage
        mask = tracker.mask_for(digit_dataset.images[1])
        gain = tracker.marginal_gain(mask)
        tracker.add_mask(mask)
        assert tracker.coverage == pytest.approx(before + gain)

    def test_adding_same_sample_twice_gains_nothing(self, trained_cnn, digit_dataset):
        tracker = CoverageTracker(trained_cnn)
        x = digit_dataset.images[2]
        tracker.add_sample(x)
        assert tracker.marginal_gain_of_sample(x) == 0.0

    def test_reset(self, trained_cnn, digit_dataset):
        tracker = CoverageTracker(trained_cnn)
        tracker.add_sample(digit_dataset.images[0])
        tracker.reset()
        assert tracker.coverage == 0.0
        assert tracker.num_tests == 0

    def test_mask_size_validation(self, trained_cnn):
        tracker = CoverageTracker(trained_cnn)
        with pytest.raises(ValueError):
            tracker.add_mask(np.ones(3, dtype=bool))

    def test_uncovered_indices_shrink(self, trained_cnn, digit_dataset):
        tracker = CoverageTracker(trained_cnn)
        before = tracker.uncovered_indices().size
        tracker.add_sample(digit_dataset.images[0])
        assert tracker.uncovered_indices().size < before


class TestActivationMaskCache:
    def test_masks_match_direct_computation(self, trained_cnn, digit_dataset):
        images = digit_dataset.images[:5]
        cache = ActivationMaskCache(trained_cnn, images)
        assert len(cache) == 5
        for i in range(5):
            np.testing.assert_array_equal(
                cache.mask(i), activation_mask(trained_cnn, images[i])
            )

    def test_marginal_gains_match_tracker(self, trained_cnn, digit_dataset):
        images = digit_dataset.images[:5]
        cache = ActivationMaskCache(trained_cnn, images)
        tracker = CoverageTracker(trained_cnn)
        tracker.add_sample(images[0])
        gains = cache.marginal_gains(tracker.covered_mask)
        for i in range(5):
            assert gains[i] == pytest.approx(tracker.marginal_gain(cache.mask(i)))

    def test_per_sample_coverage(self, trained_cnn, digit_dataset):
        images = digit_dataset.images[:3]
        cache = ActivationMaskCache(trained_cnn, images)
        vcs = cache.per_sample_coverage()
        for i in range(3):
            assert vcs[i] == pytest.approx(validation_coverage(trained_cnn, images[i]))

    def test_shape_validation(self, trained_cnn):
        with pytest.raises(ValueError):
            ActivationMaskCache(trained_cnn, np.zeros((3, 12, 12)))
        cache = ActivationMaskCache(trained_cnn, np.zeros((2, 1, 12, 12)))
        with pytest.raises(ValueError):
            cache.marginal_gains(np.zeros(5, dtype=bool))
