"""Tests for the Dataset container and the synthetic data generators."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    generate_digits,
    generate_imagenet_proxy,
    generate_noise_images,
    generate_objects,
    generate_uniform_noise_images,
    load_synth_cifar,
    load_synth_mnist,
    normalize_images,
    render_digit,
    render_object,
)
from repro.data.synth_digits import CLASS_NAMES as DIGIT_NAMES
from repro.data.synth_objects import CLASS_NAMES as OBJECT_NAMES


class TestDataset:
    def _dataset(self, n=20):
        rng = np.random.default_rng(0)
        return Dataset(
            images=rng.random((n, 1, 4, 4)),
            labels=rng.integers(0, 4, size=n),
            class_names=[str(i) for i in range(4)],
            name="toy",
        )

    def test_basic_properties(self):
        ds = self._dataset()
        assert len(ds) == 20
        assert ds.sample_shape == (1, 4, 4)
        assert ds.num_classes == 4
        image, label = ds[3]
        assert image.shape == (1, 4, 4)
        assert isinstance(label, int)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="shape"):
            Dataset(images=np.zeros((3, 4, 4)), labels=np.zeros(3))
        with pytest.raises(ValueError, match="count"):
            Dataset(images=np.zeros((3, 1, 4, 4)), labels=np.zeros(2))
        with pytest.raises(ValueError, match="class_names"):
            Dataset(
                images=np.zeros((2, 1, 4, 4)),
                labels=np.array([0, 5]),
                class_names=["a", "b"],
            )

    def test_subset_and_take(self):
        ds = self._dataset()
        sub = ds.subset([0, 5, 7])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 7]])
        taken = ds.take(5, rng=1)
        assert len(taken) == 5
        with pytest.raises(ValueError):
            ds.take(100)

    def test_split_partitions_everything(self):
        ds = self._dataset()
        train, test = ds.split(0.75, rng=0)
        assert len(train) + len(test) == len(ds)
        assert len(train) == 15
        with pytest.raises(ValueError):
            ds.split(1.5)

    def test_batches_cover_all_samples(self):
        ds = self._dataset()
        seen = 0
        for images, labels in ds.batches(6):
            assert images.shape[0] == labels.shape[0]
            seen += images.shape[0]
        assert seen == len(ds)

    def test_batches_shuffle_changes_order_not_content(self):
        ds = self._dataset()
        plain = np.concatenate([l for _, l in ds.batches(4)])
        shuffled = np.concatenate([l for _, l in ds.batches(4, shuffle=True, rng=3)])
        assert sorted(plain.tolist()) == sorted(shuffled.tolist())

    def test_merged_with(self):
        a, b = self._dataset(8), self._dataset(6)
        merged = a.merged_with(b)
        assert len(merged) == 14

    def test_class_counts(self):
        ds = self._dataset()
        assert ds.class_counts().sum() == len(ds)

    def test_normalize_images_clips(self):
        out = normalize_images(np.array([[-1.0, 0.5, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]])


class TestSynthDigits:
    def test_render_digit_shape_and_range(self):
        img = render_digit(7, rng=0)
        assert img.shape == (1, 28, 28)
        assert img.min() >= 0.0
        assert img.max() <= 1.0
        assert img.max() > 0.5  # the stroke is actually drawn

    def test_render_digit_rejects_bad_class(self):
        with pytest.raises(ValueError):
            render_digit(10)

    def test_render_is_deterministic_for_fixed_seed(self):
        np.testing.assert_array_equal(render_digit(3, rng=5), render_digit(3, rng=5))

    def test_different_digits_look_different(self):
        a = render_digit(0, rng=1, noise_std=0.0)
        b = render_digit(1, rng=1, noise_std=0.0)
        assert np.abs(a - b).mean() > 0.01

    def test_generate_digits_balanced(self):
        ds = generate_digits(50, rng=0)
        assert len(ds) == 50
        assert ds.num_classes == 10
        assert ds.class_names == DIGIT_NAMES
        counts = ds.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_load_synth_mnist_shapes(self):
        train, test = load_synth_mnist(30, 10, rng=0)
        assert train.sample_shape == (1, 28, 28)
        assert len(train) == 30
        assert len(test) == 10

    def test_generate_digits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            generate_digits(0)


class TestSynthObjects:
    def test_render_object_shape_and_range(self):
        img = render_object(4, rng=0)
        assert img.shape == (3, 32, 32)
        assert img.min() >= 0.0
        assert img.max() <= 1.0

    def test_all_classes_render(self):
        for cls in range(len(OBJECT_NAMES)):
            img = render_object(cls, rng=cls)
            assert np.isfinite(img).all()

    def test_render_object_rejects_bad_class(self):
        with pytest.raises(ValueError):
            render_object(10)

    def test_generate_objects_balanced(self):
        ds = generate_objects(40, rng=0)
        assert len(ds) == 40
        assert ds.class_names == OBJECT_NAMES
        counts = ds.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_load_synth_cifar_shapes(self):
        train, test = load_synth_cifar(20, 10, rng=0)
        assert train.sample_shape == (3, 32, 32)
        assert len(train) == 20 and len(test) == 10


class TestNoiseAndProxy:
    def test_noise_images_shape_and_clipping(self):
        ds = generate_noise_images(10, (1, 8, 8), rng=0, mean=0.5, std=0.5)
        assert ds.images.shape == (10, 1, 8, 8)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_noise_mean_parameter_shifts_brightness(self):
        dark = generate_noise_images(20, (1, 8, 8), rng=0, mean=0.0, std=0.2)
        bright = generate_noise_images(20, (1, 8, 8), rng=0, mean=0.8, std=0.2)
        assert dark.images.mean() < bright.images.mean()

    def test_uniform_noise_images(self):
        ds = generate_uniform_noise_images(5, (3, 4, 4), rng=1)
        assert ds.images.shape == (5, 3, 4, 4)

    def test_noise_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_noise_images(0, (1, 4, 4))
        with pytest.raises(ValueError):
            generate_noise_images(2, (4, 4))
        with pytest.raises(ValueError):
            generate_noise_images(2, (1, 4, 4), std=0.0)

    def test_imagenet_proxy_shapes_and_structure(self):
        grey = generate_imagenet_proxy(4, (1, 16, 16), rng=0)
        rgb = generate_imagenet_proxy(4, (3, 16, 16), rng=0)
        assert grey.images.shape == (4, 1, 16, 16)
        assert rgb.images.shape == (4, 3, 16, 16)
        # structured images should have spatial variation, unlike flat fields
        assert grey.images.std() > 0.01

    def test_imagenet_proxy_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_imagenet_proxy(0, (1, 8, 8))
        with pytest.raises(ValueError):
            generate_imagenet_proxy(2, (8, 8))
