"""Tests for distributed campaign execution (``repro.campaign.distributed``).

Covers the shard-store naming scheme, the work-stealing plan, the canonical
byte-stable merge/compact pipeline, end-to-end ``--shards`` runs (byte
identity vs the serial runner, zero-re-execution resume across shard
boundaries, SIGKILL-of-a-worker chaos), the digest-keyed
:class:`ModelExchange`, spill-store garbage collection, and the satellite
concurrent-writer gate: two processes appending to distinct shard stores —
one hard-killed mid-append — whose merge is byte-identical to a
single-writer store of the same records.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, run_campaign
from repro.campaign.__main__ import main as campaign_main
from repro.campaign.distributed import (
    ModelExchange,
    canonical_store_text,
    compact_store,
    find_shard_stores,
    merge_stores,
    plan_shards,
    run_distributed_campaign,
    shard_store_path,
)
from repro.campaign.gc import gc_spill
from repro.campaign.store import FailureRecord, ResultStore, ScenarioRecord
from repro.faults import FaultPlan

SHARDS = 2


def tiny_spec(**overrides: object) -> CampaignSpec:
    """The same four-scenario campaign as tests/test_campaign.py."""
    base = dict(
        name="tiny",
        attacks=("sba", "random"),
        models=("mnist",),
        criteria=("default",),
        strategies=("random",),
        budgets=(2, 3),
        trials=2,
        train_size=24,
        test_size=12,
        epochs=1,
        width_multiplier=0.08,
        candidate_pool=12,
        gradient_updates=3,
        reference_inputs=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def record(digest: str, detections: int = 1) -> ScenarioRecord:
    return ScenarioRecord(
        digest=digest,
        scenario={"model": "mnist", "attack": "sba"},
        seed=7,
        trials=2,
        detections=detections,
        coverage=0.5,
    )


def failure(digest: str, attempts: int = 1) -> FailureRecord:
    return FailureRecord(
        digest=digest,
        scenario={"model": "mnist", "attack": "sba"},
        seed=7,
        error="IOError",
        message="injected fault",
        attempts=attempts,
    )


@dataclass(frozen=True)
class StubScenario:
    """The three attributes :func:`plan_shards` reads."""

    model: str
    attack: str
    digest: str


def stub_scenarios(*groups):
    """``(model, attack, count)`` triples → expansion-ordered stub scenarios."""
    out = []
    for model, attack, count in groups:
        for i in range(count):
            out.append(StubScenario(model, attack, f"{model}-{attack}-{i}"))
    return out


@pytest.fixture(scope="module")
def dist(tmp_path_factory):
    """One serial and one ``shards=2`` run of the tiny campaign."""
    root = tmp_path_factory.mktemp("dist")
    serial = root / "serial.jsonl"
    serial_summary = run_campaign(tiny_spec(), str(serial), backend="numpy")
    assert serial_summary.executed == 4 and serial_summary.failed == 0
    sharded = root / "sharded.jsonl"
    sharded_summary = run_campaign(tiny_spec(), str(sharded), backend="numpy", shards=SHARDS)
    return {
        "root": root,
        "serial": serial,
        "sharded": sharded,
        "sharded_summary": sharded_summary,
    }


# ---------------------------------------------------------------------------
# shard store naming
# ---------------------------------------------------------------------------


class TestShardStoreNaming:
    def test_shard_store_path_inserts_shard_component(self, tmp_path):
        base = tmp_path / "store.jsonl"
        assert shard_store_path(base, 3) == tmp_path / "store.shard3.jsonl"

    def test_suffixless_base_gains_jsonl(self, tmp_path):
        assert shard_store_path(tmp_path / "store", 0).name == "store.shard0.jsonl"

    def test_find_orders_by_shard_number_and_ignores_decoys(self, tmp_path):
        base = tmp_path / "store.jsonl"
        for name in (
            "store.jsonl",
            "store.shard2.jsonl",
            "store.shard0.jsonl",
            "store.shard10.jsonl",
            "store.shardx.jsonl",
            "other.shard1.jsonl",
        ):
            (tmp_path / name).write_text("")
        assert [p.name for p in find_shard_stores(base)] == [
            "store.shard0.jsonl",
            "store.shard2.jsonl",
            "store.shard10.jsonl",
        ]

    def test_find_in_missing_directory_is_empty(self, tmp_path):
        assert find_shard_stores(tmp_path / "nowhere" / "store.jsonl") == []


# ---------------------------------------------------------------------------
# work-stealing plan
# ---------------------------------------------------------------------------


class TestPlanShards:
    def test_single_shard_keeps_expansion_order(self):
        scenarios = stub_scenarios(("a", "x", 3), ("a", "y", 1), ("b", "x", 2))
        (queue,) = plan_shards(scenarios, 1)
        assert [(u.model, u.attack, len(u)) for u in queue] == [
            ("a", "x", 3),
            ("a", "y", 1),
            ("b", "x", 2),
        ]

    def test_models_stay_shard_local(self):
        scenarios = stub_scenarios(("a", "x", 3), ("a", "y", 1), ("b", "x", 2))
        plan = plan_shards(scenarios, 2)
        # LPT: model a (4 scenarios) lands first, model b on the other shard
        assert {u.model for u in plan[0]} == {"a"}
        assert {u.model for u in plan[1]} == {"b"}

    def test_spare_shards_seeded_from_largest_queue(self):
        scenarios = stub_scenarios(("a", "x", 2), ("a", "y", 2), ("a", "z", 2))
        plan = plan_shards(scenarios, 3)
        assert all(len(queue) == 1 for queue in plan)

    def test_scenarios_conserved(self):
        scenarios = stub_scenarios(("a", "x", 5), ("b", "y", 3), ("c", "z", 1))
        plan = plan_shards(scenarios, 4)
        planned = [s for queue in plan for unit in queue for s in unit.scenarios]
        assert sorted(s.digest for s in planned) == sorted(s.digest for s in scenarios)

    def test_plan_is_deterministic(self):
        scenarios = stub_scenarios(("a", "x", 2), ("b", "y", 2), ("c", "z", 2))
        assert plan_shards(scenarios, 2) == plan_shards(scenarios, 2)

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            plan_shards([], 0)


# ---------------------------------------------------------------------------
# canonical merge / compact
# ---------------------------------------------------------------------------


class TestCanonicalMergeCompact:
    def test_compact_sorts_records_by_digest(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        for digest in ("c", "a", "b"):
            store.append(record(digest))
        text = compact_store(path)
        assert text == canonical_store_text([record("a"), record("b"), record("c")], [])

    def test_compact_heals_failure_replaced_by_success(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append_failure(failure("a"))
        store.append(record("a"))
        assert compact_store(path) == canonical_store_text([record("a")], [])

    def test_compact_drops_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ResultStore(path).append(record("a"))
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"digest": "torn')  # no newline: a SIGKILL mid-append
        out = tmp_path / "compacted.jsonl"
        text = compact_store(path, output=out)
        assert text == canonical_store_text([record("a")], [])
        assert out.read_text(encoding="utf-8") == text

    def test_merge_equals_compact_of_union(self, tmp_path):
        s0, s1 = tmp_path / "s.shard0.jsonl", tmp_path / "s.shard1.jsonl"
        for digest in ("d", "b"):
            ResultStore(s0).append(record(digest))
        for digest in ("a", "c"):
            ResultStore(s1).append(record(digest))
        union = tmp_path / "union.jsonl"
        for digest in ("d", "b", "a", "c"):
            ResultStore(union).append(record(digest))
        assert merge_stores([s0, s1]) == compact_store(union)

    def test_merge_duplicate_digests_must_agree(self, tmp_path):
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        ResultStore(s0).append(record("a", detections=1))
        ResultStore(s1).append(record("a", detections=2))
        with pytest.raises(ValueError, match="conflicting records"):
            merge_stores([s0, s1])

    def test_merge_agreeing_duplicates_are_collapsed(self, tmp_path):
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        ResultStore(s0).append(record("a"))
        ResultStore(s1).append(record("a"))
        assert merge_stores([s0, s1]) == canonical_store_text([record("a")], [])

    def test_merge_success_overrides_failure_across_stores(self, tmp_path):
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        ResultStore(s0).append_failure(failure("a"))
        ResultStore(s1).append(record("a"))
        assert merge_stores([s0, s1]) == canonical_store_text([record("a")], [])

    def test_merge_keeps_highest_attempt_failure(self, tmp_path):
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        ResultStore(s0).append_failure(failure("a", attempts=1))
        ResultStore(s1).append_failure(failure("a", attempts=3))
        (line,) = merge_stores([s0, s1]).splitlines()
        assert json.loads(line)["attempts"] == 3

    def test_merge_prune_unlinks_shard_stores(self, tmp_path):
        s0, s1 = tmp_path / "s.shard0.jsonl", tmp_path / "s.shard1.jsonl"
        ResultStore(s0).append(record("a"))
        ResultStore(s1).append(record("b"))
        out = tmp_path / "merged.jsonl"
        text = merge_stores([s0, s1], output=out, prune=True)
        assert out.read_text(encoding="utf-8") == text
        assert not s0.exists() and not s1.exists()

    def test_merge_prune_requires_output(self, tmp_path):
        with pytest.raises(ValueError, match="output"):
            merge_stores([tmp_path / "s0.jsonl"], prune=True)


# ---------------------------------------------------------------------------
# end-to-end distributed runs
# ---------------------------------------------------------------------------


class TestDistributedEndToEnd:
    def test_executes_every_scenario(self, dist):
        summary = dist["sharded_summary"]
        assert summary.executed == 4 and summary.failed == 0

    def test_workers_wrote_per_shard_stores(self, dist):
        shard_paths = find_shard_stores(dist["sharded"])
        assert 1 <= len(shard_paths) <= SHARDS
        assert not dist["sharded"].exists()  # the parent never appends
        stored = set()
        for path in shard_paths:
            digests = ResultStore(path).completed_digests()
            assert not (stored & digests)  # each scenario ran exactly once
            stored |= digests
        assert len(stored) == 4

    def test_merge_byte_identical_to_compacted_serial(self, dist):
        merged = merge_stores(find_shard_stores(dist["sharded"]))
        assert merged == compact_store(dist["serial"])
        assert merged  # the gate is vacuous on empty text

    def test_resume_executes_zero_scenarios(self, dist):
        summary = run_campaign(tiny_spec(), str(dist["sharded"]), backend="numpy", shards=SHARDS)
        assert summary.executed == 0 and summary.skipped == 4

    def test_resume_across_shard_boundaries(self, dist):
        # a different shard count still sees every completed digest
        summary = run_distributed_campaign(tiny_spec(), dist["sharded"], shards=3, backend="numpy")
        assert summary.executed == 0 and summary.skipped == 4

    def test_partial_shard_store_resumes_remainder(self, dist, tmp_path):
        source = find_shard_stores(dist["sharded"])[0]
        done = len(ResultStore(source).records())
        base = tmp_path / "store.jsonl"
        shard_store_path(base, 0).write_bytes(source.read_bytes())
        summary = run_distributed_campaign(tiny_spec(), base, shards=SHARDS, backend="numpy")
        assert summary.skipped == done
        assert summary.executed == 4 - done
        merged = merge_stores(find_shard_stores(base))
        assert merged == compact_store(dist["serial"])

    def test_serial_store_participates_in_resume(self, dist, tmp_path):
        base = tmp_path / "store.jsonl"
        base.write_bytes(dist["serial"].read_bytes())
        summary = run_distributed_campaign(tiny_spec(), base, shards=SHARDS, backend="numpy")
        assert summary.executed == 0 and summary.skipped == 4

    def test_shards_knob_is_digest_neutral(self):
        plain = [s.digest for s in tiny_spec().expand()]
        sharded = [s.digest for s in tiny_spec(shards=4).expand()]
        assert plain == sharded

    def test_backend_instances_are_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend name"):
            run_distributed_campaign(tiny_spec(), tmp_path / "s.jsonl", shards=2, backend=object())


class TestWorkerKillChaos:
    def test_sigkilled_worker_is_respawned_and_bytes_survive(self, dist, tmp_path):
        plan = FaultPlan()
        plan.kill_worker(worker=1, site="campaign.shard", at=(0,))
        base = tmp_path / "store.jsonl"
        summary = run_distributed_campaign(
            tiny_spec(), base, shards=SHARDS, backend="numpy", fault_plan=plan
        )
        assert summary.executed == 4 and summary.failed == 0
        merged = merge_stores(find_shard_stores(base))
        assert merged == compact_store(dist["serial"])


# ---------------------------------------------------------------------------
# model exchange
# ---------------------------------------------------------------------------


class TestModelExchange:
    def test_roundtrip_across_instances(self, tmp_path):
        ModelExchange(tmp_path).put("k", {"weights": [1, 2, 3]})
        assert ModelExchange(tmp_path).get("k") == {"weights": [1, 2, 3]}

    def test_missing_key_returns_none(self, tmp_path):
        assert ModelExchange(tmp_path).get("absent") is None

    def test_corrupt_entry_returns_none(self, tmp_path):
        exchange = ModelExchange(tmp_path)
        exchange.path_for("k").write_bytes(b"\x00not a pickle")
        assert exchange.get("k") is None

    def test_first_writer_wins(self, tmp_path):
        ModelExchange(tmp_path).put("k", "first")
        ModelExchange(tmp_path).put("k", "second")
        assert ModelExchange(tmp_path).get("k") == "first"

    def test_runner_attaches_published_model(self, tmp_path):
        spec = tiny_spec()
        exchange_dir = tmp_path / "exchange"
        first: list = []
        with CampaignRunner(
            spec,
            ResultStore(tmp_path / "s0.jsonl"),
            backend="numpy",
            progress=first.append,
            model_exchange=ModelExchange(exchange_dir),
        ) as runner:
            runner._prepare_model("mnist")
        assert any("training victim" in msg for msg in first)
        key = spec.training_digest("mnist")
        assert ModelExchange(exchange_dir).path_for(key).exists()

        second: list = []
        with CampaignRunner(
            spec,
            ResultStore(tmp_path / "s1.jsonl"),
            backend="numpy",
            progress=second.append,
            model_exchange=ModelExchange(exchange_dir),
        ) as runner:
            runner._prepare_model("mnist")
        assert any("attached published model" in msg for msg in second)
        assert not any("training victim" in msg for msg in second)


# ---------------------------------------------------------------------------
# satellite: concurrent shard writers, one SIGKILLed mid-append
# ---------------------------------------------------------------------------


class TestConcurrentShardWriters:
    WRITER = """
import sys, time
sys.path.insert(0, {src!r})
from repro.campaign.store import ResultStore, ScenarioRecord

prefix, count, path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
store = ResultStore(path)
print("ready", flush=True)
for i in range(count):
    store.append(ScenarioRecord(
        digest=f"{{prefix}}-{{i:03d}}", scenario={{"model": "mnist"}}, seed=i,
        trials=2, detections=1, coverage=0.5))
    time.sleep(0.002)
"""

    def test_merge_matches_single_writer_despite_sigkill(self, tmp_path):
        base = tmp_path / "store.jsonl"
        src = str(Path(__file__).resolve().parents[1] / "src")
        script = self.WRITER.format(src=src)

        def launch(prefix: str, shard: int) -> subprocess.Popen:
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    script,
                    prefix,
                    "40",
                    str(shard_store_path(base, shard)),
                ],
                stdout=subprocess.PIPE,
                text=True,
            )
            assert proc.stdout.readline().strip() == "ready"
            return proc

        survivor = launch("a", 0)
        victim = launch("b", 1)
        time.sleep(0.05)  # let both interleave some appends
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert survivor.wait(timeout=30) == 0

        shard_paths = find_shard_stores(base)
        assert [p.name for p in shard_paths] == [
            "store.shard0.jsonl",
            "store.shard1.jsonl",
        ]
        merged = merge_stores(shard_paths, output=tmp_path / "merged.jsonl")

        # a single-writer store of the same surviving records must
        # canonicalise to identical bytes (any torn tail is dropped)
        survivors = [r for p in shard_paths for r in ResultStore(p).records()]
        assert {r.digest for r in survivors} >= {f"a-{i:03d}" for i in range(40)}
        reference = tmp_path / "reference.jsonl"
        ref_store = ResultStore(reference)
        for rec in survivors:
            ref_store.append(rec)
        assert merged == compact_store(reference)
        # the merged file itself is whole: every line parses, none torn
        for line in (tmp_path / "merged.jsonl").read_text().splitlines():
            json.loads(line)


# ---------------------------------------------------------------------------
# spill-store garbage collection
# ---------------------------------------------------------------------------


@pytest.fixture
def spill(tmp_path):
    """A spill dir with one stale store, one live store, one quarantined."""
    spill_dir = tmp_path / "spill"
    quarantine = spill_dir / "quarantine"
    quarantine.mkdir(parents=True)
    now = time.time()
    stale = spill_dir / "masks-old.masks"
    stale.write_bytes(b"x" * 64)
    os.utime(stale, (now - 600, now - 600))
    live = spill_dir / "masks-new.masks"
    live.write_bytes(b"y" * 32)
    sidecar = quarantine / "masks-bad.masks"
    sidecar.write_bytes(b"z" * 16)
    os.utime(sidecar, (now - 600, now - 600))
    store = tmp_path / "store.jsonl"
    store.write_text("")
    os.utime(store, (now - 120, now - 120))
    return {"dir": spill_dir, "stale": stale, "live": live, "store": store}


class TestGcSpill:
    def test_dry_run_reports_without_removing(self, spill):
        report = gc_spill(spill["dir"], stores=[spill["store"]], dry_run=True)
        assert set(report.removed) == {
            spill["stale"],
            spill["dir"] / "quarantine" / "masks-bad.masks",
        }
        assert report.reclaimed_bytes == 64 + 16
        assert report.kept == 1
        assert spill["stale"].exists()
        assert "would reclaim 80 bytes" in report.describe()

    def test_removes_stale_and_keeps_live(self, spill):
        report = gc_spill(spill["dir"], stores=[spill["store"]])
        assert not spill["stale"].exists()
        assert spill["live"].exists()
        assert not (spill["dir"] / "quarantine").exists()  # emptied, removed
        assert "reclaimed 80 bytes" in report.describe()

    def test_older_than_cutoff_alone(self, spill):
        report = gc_spill(spill["dir"], older_than_s=300)
        assert spill["stale"] in report.removed
        assert spill["live"].exists()

    def test_stricter_cutoff_wins(self, spill):
        # reference newer than older_than: nothing newer than 10min goes
        report = gc_spill(spill["dir"], stores=[spill["store"]], older_than_s=1, dry_run=True)
        assert spill["live"] not in report.removed  # store mtime still guards

    def test_requires_a_cutoff_source(self, spill):
        with pytest.raises(ValueError, match="cutoff"):
            gc_spill(spill["dir"])

    def test_missing_spill_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            gc_spill(tmp_path / "nowhere", older_than_s=1)

    def test_missing_reference_raises(self, spill, tmp_path):
        with pytest.raises(FileNotFoundError):
            gc_spill(spill["dir"], stores=[tmp_path / "ghost.jsonl"])


# ---------------------------------------------------------------------------
# CLI: merge / compact / gc-spill, and flag validation
# ---------------------------------------------------------------------------


class TestDistributedCLI:
    def test_merge_and_compact_commands(self, tmp_path, capsys):
        base = tmp_path / "store.jsonl"
        ResultStore(shard_store_path(base, 0)).append(record("b"))
        ResultStore(shard_store_path(base, 1)).append(record("a"))
        merged = tmp_path / "merged.jsonl"
        rc = campaign_main(["merge", "--store", str(base), "--out", str(merged)])
        assert rc == 0
        assert "merged 2 store(s)" in capsys.readouterr().out
        assert merged.read_text(encoding="utf-8") == canonical_store_text(
            [record("a"), record("b")], []
        )
        assert campaign_main(["compact", "--store", str(merged)]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_merge_prune_via_cli(self, tmp_path, capsys):
        base = tmp_path / "store.jsonl"
        ResultStore(shard_store_path(base, 0)).append(record("a"))
        rc = campaign_main(["merge", "--store", str(base), "--out", str(base), "--prune"])
        assert rc == 0
        assert "pruned" in capsys.readouterr().out
        assert base.exists()
        assert not shard_store_path(base, 0).exists()

    def test_merge_without_stores_fails(self, tmp_path, capsys):
        rc = campaign_main(["merge", "--store", str(tmp_path / "none.jsonl")])
        assert rc == 1
        assert "no shard stores" in capsys.readouterr().err

    def test_gc_spill_dry_run(self, spill, capsys):
        rc = campaign_main(
            [
                "gc-spill",
                "--spill-dir",
                str(spill["dir"]),
                "--store",
                str(spill["store"]),
                "--dry-run",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "would remove" in out and "would reclaim" in out
        assert spill["stale"].exists()

    def test_gc_spill_without_cutoff_fails(self, spill, capsys):
        rc = campaign_main(["gc-spill", "--spill-dir", str(spill["dir"])])
        assert rc == 1
        assert "cutoff" in capsys.readouterr().err

    def test_run_rejects_workers_with_shards(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.toml"
        spec_file.write_text(
            "\n".join(
                [
                    "[campaign]",
                    'name = "tiny"',
                    'attacks = ["sba"]',
                    'models = ["mnist"]',
                    "budgets = [2]",
                    "trials = 2",
                    "train_size = 24",
                    "test_size = 12",
                    "epochs = 1",
                    "reference_inputs = 6",
                ]
            )
        )
        rc = campaign_main(
            [
                "run",
                "--spec",
                str(spec_file),
                "--store",
                str(tmp_path / "s.jsonl"),
                "--shards",
                "2",
                "--workers",
                "3",
            ]
        )
        assert rc == 2
        assert "--workers" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# api plumbing
# ---------------------------------------------------------------------------


class TestApiShardsPlumbing:
    def test_run_config_validates_shards(self):
        from repro.api import RunConfig

        RunConfig(shards=2).validate()
        with pytest.raises(ValueError, match="shards"):
            RunConfig(shards=0).validate()

    def test_sweep_request_validates_shards(self):
        from repro.api import SweepRequest

        SweepRequest(spec={"name": "tiny"}, shards=2).validate()
        with pytest.raises(ValueError, match="shards"):
            SweepRequest(spec={"name": "tiny"}, shards=0).validate()

    def test_spec_rejects_invalid_shards(self):
        with pytest.raises(ValueError, match="shards"):
            tiny_spec(shards=0).validate()
