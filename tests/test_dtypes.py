"""DtypePolicy, fused kernels, workspace pool and copy-free fast paths.

Pins the documented float32-vs-float64 equivalence tolerances on both
Table-I architectures, the dtype-following behaviour of every layer's
forward/backward (no silent float64 upcasts), the fused in-place activation
fast paths, the engine's no-copy batch ingestion, and the acquire/release
semantics of the shared im2col workspace pool.
"""

import numpy as np
import pytest

from repro.engine import Engine
from repro.models.zoo import cifar_cnn, mnist_cnn, small_cnn
from repro.nn.activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from repro.nn.dtypes import (
    FLOAT32_COVERAGE_ATOL,
    FLOAT32_FORWARD_ATOL,
    FLOAT32_GRADIENT_ATOL,
    DtypePolicy,
)
from repro.nn.workspace import WorkspacePool


def _pool(model, size, seed):
    rng = np.random.default_rng(seed)
    return rng.random((size, *model.input_shape))


@pytest.fixture(scope="module", params=["mnist", "cifar"])
def arch(request):
    if request.param == "mnist":
        return mnist_cnn(width_multiplier=0.125, input_size=12, rng=0)
    return cifar_cnn(width_multiplier=0.0625, input_size=12, rng=1)


class TestDtypePolicy:
    def test_resolve_and_validation(self):
        assert DtypePolicy.resolve(None).is_default
        assert DtypePolicy.resolve("float64").is_default
        assert not DtypePolicy.resolve("float32").is_default
        assert DtypePolicy.resolve(np.float32).name == "float32"
        policy = DtypePolicy("float32")
        assert DtypePolicy.resolve(policy) is policy
        with pytest.raises(ValueError):
            DtypePolicy("float16")
        with pytest.raises(ValueError):
            DtypePolicy("int64")
        with pytest.raises(AttributeError):
            policy.compute_dtype = np.float64  # immutable

    def test_equality_and_hash(self):
        assert DtypePolicy("float32") == DtypePolicy(np.float32)
        assert DtypePolicy("float32") != DtypePolicy("float64")
        assert hash(DtypePolicy("float64")) == hash(DtypePolicy())

    def test_asarray_fast_path_is_copy_free(self):
        policy = DtypePolicy()
        x = np.random.default_rng(0).random((4, 3))
        assert policy.asarray(x) is x  # no copy for conforming input
        assert policy.asarray(x[::2]) is not x  # non-contiguous -> copy
        x32 = x.astype(np.float32)
        assert DtypePolicy("float32").asarray(x32) is x32
        assert policy.asarray(x32).dtype == np.float64

    def test_cast_model_default_is_identity(self, arch):
        assert DtypePolicy().cast_model(arch) is arch

    def test_cast_model_float32_shares_nothing(self, arch):
        shadow = DtypePolicy("float32").cast_model(arch)
        assert shadow is not arch
        for p32, p64 in zip(shadow.parameters(), arch.parameters()):
            assert p32.value.dtype == np.float32
            assert p32.grad.dtype == np.float32
        # perturbing the shadow never touches the original
        shadow.parameter_view().add_scalar(0, 1.0)
        assert arch.parameter_view().get_scalar(0) != pytest.approx(
            shadow.parameter_view().get_scalar(0)
        )


class TestFloat32Equivalence:
    """The documented tolerances of repro.nn.dtypes, on both Table-I archs."""

    def test_forward_within_documented_atol(self, arch):
        images = _pool(arch, 6, seed=10)
        y64 = Engine(arch, cache=False).forward(images)
        y32 = Engine(arch, dtype="float32", cache=False).forward(images)
        assert y32.dtype == np.float32  # compute stayed in float32
        assert np.abs(y64 - y32).max() <= FLOAT32_FORWARD_ATOL

    def test_gradients_within_documented_atol(self, arch):
        images = _pool(arch, 5, seed=11)
        g64 = Engine(arch, cache=False).output_gradients(images)
        g32 = Engine(arch, dtype="float32", cache=False).output_gradients(images)
        assert g32.dtype == np.float32  # no silent upcast anywhere
        assert np.abs(g64 - g32).max() <= FLOAT32_GRADIENT_ATOL

    def test_coverage_within_documented_atol(self, arch):
        images = _pool(arch, 8, seed=12)
        c64 = Engine(arch, cache=False).mean_validation_coverage(images)
        c32 = Engine(arch, dtype="float32", cache=False).mean_validation_coverage(images)
        assert abs(c64 - c32) <= FLOAT32_COVERAGE_ATOL

    def test_shadow_recast_after_perturbation(self):
        model = small_cnn(rng=3)
        images = _pool(model, 4, seed=13)
        engine = Engine(model, dtype="float32", cache=False)
        before = engine.forward(images).copy()
        model.parameter_view().add_scalar(0, 0.5)
        after = engine.forward(images)
        assert not np.array_equal(before, after)
        y64 = model.forward(images)
        assert np.abs(after - y64).max() <= FLOAT32_FORWARD_ATOL

    def test_float32_and_float64_results_cached_separately(self):
        model = small_cnn(rng=4)
        images = _pool(model, 4, seed=14)
        e64 = Engine(model)
        e32 = Engine(model, dtype="float32")
        y64 = e64.forward(images)
        y32 = e32.forward(images)
        assert y64.dtype == np.float64 and y32.dtype == np.float32
        # each engine's second query hits its own entry
        e64.forward(images)
        e32.forward(images)
        assert e64.stats.hits == 1 and e32.stats.hits == 1


class TestDtypeFollowingKernels:
    """No hardcoded float64 buffers anywhere in the backward path."""

    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid", "leaky_relu"])
    def test_layer_stack_preserves_float32(self, activation):
        model = small_cnn(activation=activation, rng=5)
        shadow = DtypePolicy("float32").cast_model(model)
        x = _pool(model, 3, seed=15).astype(np.float32)
        y = shadow.forward(x)
        assert y.dtype == np.float32
        # the full batched backward (conv, maxpool scatter, dense) follows
        grads = shadow.output_gradients_batch(x)
        assert grads.dtype == np.float32

    def test_maxpool_scatter_buffer_follows_gradient_dtype(self):
        """Regression test for the hardcoded float64 scatter buffer."""
        from repro.nn.layers import MaxPool2D

        pool = MaxPool2D(2)
        x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32)
        out = pool.forward(x)
        grad = pool.backward(np.ones_like(out))
        assert out.dtype == np.float32
        assert grad.dtype == np.float32


class TestFusedActivations:
    def test_forward_inplace_matches_forward(self):
        rng = np.random.default_rng(0)
        for act in (Identity(), ReLU(), Tanh(), Sigmoid(), Softmax(), LeakyReLU()):
            x = rng.normal(0.0, 2.0, size=(5, 7))
            expected = act.forward(x.copy())
            got = act.forward_inplace(x.copy())
            np.testing.assert_allclose(got, expected, atol=0, rtol=0)

    def test_inplace_reuses_the_buffer(self):
        for act in (ReLU(), Tanh(), Sigmoid(), Softmax()):
            x = np.random.default_rng(1).normal(size=(4, 4))
            assert act.forward_inplace(x) is x
        x = np.ones((2, 2))
        assert Identity().forward_inplace(x) is x

    def test_grad_from_output_backward_accepts_y_for_x(self):
        """For flagged activations, backward(y, y, g) == backward(x, y, g)."""
        rng = np.random.default_rng(2)
        x = rng.normal(0.0, 2.0, size=(6, 5))
        # include exact zeros: the ReLU boundary case
        x[0, 0] = 0.0
        g = rng.normal(size=x.shape)
        for name in ("identity", "relu", "tanh", "sigmoid", "softmax", "leaky_relu"):
            act = get_activation(name)
            assert act.grad_from_output, name
            y = act.forward(x)
            np.testing.assert_array_equal(act.backward(x, y, g), act.backward(y, y, g))

    def test_fused_layers_match_per_sample_reference(self):
        """End-to-end: fusion changes allocations, never results."""
        for activation in ("relu", "tanh"):
            model = small_cnn(activation=activation, rng=6)
            x = _pool(model, 4, seed=16)
            batched = model.output_gradients_batch(x)
            singles = np.stack(
                [model.output_gradients(x[i]) for i in range(len(x))]
            )
            assert np.abs(batched - singles).max() <= 1e-8


class TestEngineNoCopyFastPath:
    def test_as_batch_returns_the_same_object(self):
        """Micro-assert: no copy for a conforming pool array."""
        model = small_cnn(rng=7)
        images = _pool(model, 4, seed=17)  # float64, C-contiguous
        engine = Engine(model)
        assert engine._as_batch(images) is images

    def test_as_batch_casts_only_when_needed(self):
        model = small_cnn(rng=8)
        images = _pool(model, 4, seed=18)
        e32 = Engine(model, dtype="float32")
        out = e32._as_batch(images)
        assert out is not images and out.dtype == np.float32
        images32 = np.ascontiguousarray(images, dtype=np.float32)
        assert e32._as_batch(images32) is images32

    def test_as_batch_still_validates_shapes(self):
        model = small_cnn(rng=9)
        engine = Engine(model)
        with pytest.raises(ValueError):
            engine._as_batch(np.zeros((2, 3, 5)))
        with pytest.raises(ValueError):
            engine._as_batch(np.zeros((0, *model.input_shape)))


class TestWorkspacePool:
    def test_acquire_release_recycles_buffers(self):
        pool = WorkspacePool()
        a = pool.acquire((4, 8), np.float64)
        assert len(pool) == 0  # acquired buffers are owned by the caller
        pool.release(a)
        assert len(pool) == 1
        b = pool.acquire((4, 8), np.float64)
        assert b is a  # recycled, not reallocated
        c = pool.acquire((4, 8), np.float64)
        assert c is not a  # a is checked out; a fresh buffer is made

    def test_release_resolves_views(self):
        pool = WorkspacePool()
        a = pool.acquire((2, 3, 4), np.float64)
        pool.release(a.reshape(6, 4))  # any view hands back the base buffer
        assert pool.acquire((2, 3, 4), np.float64) is a

    def test_capacity_bounds(self):
        pool = WorkspacePool(max_slots=2, per_key=1)
        a = pool.acquire((8,), np.float64)
        b = pool.acquire((8,), np.float64)
        pool.release(a)
        pool.release(b)  # beyond per_key -> dropped
        assert len(pool) == 1
        with pytest.raises(ValueError):
            WorkspacePool(max_slots=0)

    def test_none_release_ignored(self):
        pool = WorkspacePool()
        pool.release(None)
        assert len(pool) == 0

    def test_copies_and_pickles_start_empty(self):
        import copy
        import pickle

        pool = WorkspacePool()
        pool.release(pool.acquire((16,), np.float64))
        assert len(copy.deepcopy(pool)) == 0
        assert len(pickle.loads(pickle.dumps(pool))) == 0

    def test_model_layers_share_one_pool(self):
        from repro.nn.layers import Conv2D, MaxPool2D

        model = small_cnn(rng=10)
        pools = {
            id(layer._workspace)
            for layer in model.layers
            if isinstance(layer, (Conv2D, MaxPool2D))
        }
        assert len(pools) == 1
        assert model._workspace is not None

    def test_repeated_backward_after_one_forward_is_stable(self):
        """The release contract: contents stay valid until re-acquired."""
        model = small_cnn(rng=11)
        x = _pool(model, 3, seed=19)
        logits = model.forward(x)
        g = np.ones_like(logits)
        _, first = model.backward_batch(g, need_input_grad=False)
        _, second = model.backward_batch(g, need_input_grad=False)
        np.testing.assert_array_equal(first, second)

    def test_repeated_backward_with_equal_channel_convs(self):
        """Regression: an equal-channel same-padding conv's input-gradient
        gather has the *same* patch geometry as its forward cols — an early
        release would let the gather pop and overwrite the cached buffer,
        silently corrupting every backward after the first."""
        model = mnist_cnn(width_multiplier=0.125, input_size=12, rng=12)
        x = _pool(model, 3, seed=20)
        logits = model.forward(x)
        g = np.ones_like(logits)
        # need_input_grad=True forces the full-correlation gather in every
        # conv, including conv2/conv4 whose in==out channel counts collide
        # with their own forward patch geometry
        _, first = model.backward_batch(g, need_input_grad=True)
        _, second = model.backward_batch(g, need_input_grad=True)
        _, third = model.backward_batch(g, need_input_grad=True)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, third)
