"""Engine/per-sample equivalence and behaviour tests.

Property-style checks that the batched execution engine reproduces the
per-sample reference implementations — activation masks, output gradients,
input gradients, neuron masks and coverage aggregates — to 1e-8 on both
Table-I architectures (the Tanh MNIST CNN and the ReLU CIFAR CNN, width-
scaled for test speed) plus the small unit-test models, along with the memo
cache, chunking and backend-registry behaviour.
"""

import numpy as np
import pytest

from repro.coverage.activation import ActivationCriterion, default_criterion_for
from repro.coverage.neuron_coverage import neuron_activation_mask, neuron_activation_masks
from repro.coverage.parameter_coverage import (
    CoverageTracker,
    activation_mask,
    activation_masks,
    mean_validation_coverage,
    mean_validation_coverage_reference,
    set_validation_coverage,
)
from repro.engine import (
    BatchResultCache,
    Engine,
    ExecutionBackend,
    NumpyBackend,
    array_fingerprint,
    available_backends,
    get_backend,
    register_backend,
)
from repro.models.zoo import cifar_cnn, mnist_cnn, small_cnn, small_mlp

TOLERANCE = 1e-8


def _pool(model, size, seed):
    """A deterministic image pool matching the model's input shape."""
    rng = np.random.default_rng(seed)
    return rng.random((size, *model.input_shape))


@pytest.fixture(scope="module", params=["mnist", "cifar", "small_relu", "small_tanh", "mlp"])
def arch(request):
    """Every Table-I architecture (width-scaled) plus the small test models."""
    if request.param == "mnist":
        return mnist_cnn(width_multiplier=0.125, input_size=12, rng=0)
    if request.param == "cifar":
        return cifar_cnn(width_multiplier=0.0625, input_size=12, rng=1)
    if request.param == "small_relu":
        return small_cnn(activation="relu", rng=2)
    if request.param == "small_tanh":
        return small_cnn(activation="tanh", rng=3)
    return small_mlp(rng=4)


class TestPerSampleEquivalence:
    def test_output_gradients_match_per_sample(self, arch):
        images = _pool(arch, 6, seed=10)
        engine = Engine(arch, batch_size=4)
        for scal in ("sum", "max", "predicted"):
            batched = engine.output_gradients(images, scal)
            singles = np.stack(
                [arch.output_gradients(images[i], scal) for i in range(len(images))]
            )
            assert np.abs(batched - singles).max() <= TOLERANCE

    def test_activation_masks_match_per_sample(self, arch):
        images = _pool(arch, 6, seed=11)
        crit = default_criterion_for(arch)
        batched = activation_masks(arch, images, crit)
        singles = np.stack(
            [activation_mask(arch, images[i], crit) for i in range(len(images))]
        )
        np.testing.assert_array_equal(batched, singles)

    def test_input_gradients_match_model_query(self, arch):
        images = _pool(arch, 5, seed=12)
        targets = np.arange(5) % arch.num_classes
        engine = Engine(arch)
        value_e, grad_e = engine.input_gradients(images, targets)
        value_m, grad_m = arch.input_gradient(images, targets)
        assert value_e == pytest.approx(value_m)
        assert np.abs(grad_e - grad_m).max() <= TOLERANCE

    def test_neuron_masks_match_per_sample(self, arch):
        images = _pool(arch, 6, seed=13)
        batched = neuron_activation_masks(arch, images, threshold=0.0)
        singles = np.stack(
            [neuron_activation_mask(arch, images[i], 0.0) for i in range(len(images))]
        )
        np.testing.assert_array_equal(batched, singles)

    def test_mean_validation_coverage_matches_reference(self, arch):
        images = _pool(arch, 7, seed=14)
        batched = mean_validation_coverage(arch, images)
        reference = mean_validation_coverage_reference(arch, images)
        assert abs(batched - reference) <= TOLERANCE

    def test_set_validation_coverage_matches_tracker_loop(self, arch):
        images = _pool(arch, 5, seed=15)
        tracker = CoverageTracker(arch)
        for x in images:
            tracker.add_sample(x)
        assert set_validation_coverage(arch, images) == pytest.approx(
            tracker.coverage, abs=TOLERANCE
        )

    def test_set_validation_coverage_empty_is_zero(self, arch):
        assert set_validation_coverage(arch, []) == 0.0
        empty = np.zeros((0, *arch.input_shape))
        assert set_validation_coverage(arch, empty) == 0.0
        # the engine-level namesake agrees on the edge case
        engine = Engine(arch)
        assert engine.set_validation_coverage(empty) == 0.0
        assert not engine.union_mask(empty).any()

    def test_sweeps_accept_empty_test_sets(self, arch):
        from repro.analysis.sweep import epsilon_sweep

        empty = np.zeros((0, *arch.input_shape))
        result = epsilon_sweep(arch, empty, epsilons=(0.0, 1e-2))
        assert result.coverages == [0.0, 0.0]

    def test_tracker_add_batch_matches_sample_loop(self, arch):
        images = _pool(arch, 5, seed=26)
        loop = CoverageTracker(arch)
        for x in images:
            loop.add_sample(x)
        batched = CoverageTracker(arch)
        gain = batched.add_batch(images)
        assert batched.coverage == pytest.approx(loop.coverage, abs=TOLERANCE)
        assert gain == pytest.approx(loop.coverage, abs=TOLERANCE)
        assert batched.num_tests == loop.num_tests == len(images)
        # a second add of the same batch gains nothing
        assert batched.add_batch(images) == 0.0

    def test_per_sample_parameter_grads_sum_to_batch_grads(self, arch):
        """Σ_n per-sample grads == accumulated batch gradients from backward."""
        images = _pool(arch, 4, seed=16)
        logits = arch.forward(images, training=False)
        _, per_sample = arch.backward_batch(np.ones_like(logits))
        arch.zero_grad()
        arch.forward(images, training=False)
        arch.backward(np.ones_like(logits))
        accumulated = arch.parameter_view().flat_grads()
        arch.zero_grad()
        assert np.abs(per_sample.sum(axis=0) - accumulated).max() <= 1e-7


class TestEngineBehaviour:
    def test_chunking_is_invisible(self, arch):
        images = _pool(arch, 9, seed=17)
        one_chunk = Engine(arch, batch_size=64).output_gradients(images)
        many_chunks = Engine(arch, batch_size=2).output_gradients(images)
        assert np.abs(one_chunk - many_chunks).max() <= TOLERANCE

    def test_forward_matches_model_and_is_memoized(self):
        model = small_cnn(rng=5)
        images = _pool(model, 6, seed=18)
        engine = Engine(model)
        first = engine.forward(images)
        np.testing.assert_allclose(first, model.forward(images), atol=TOLERANCE)
        misses = engine.stats.misses
        second = engine.forward(images)
        assert engine.stats.hits >= 1 and engine.stats.misses == misses
        np.testing.assert_array_equal(first, second)

    def test_cache_keys_include_parameter_digest(self):
        """Perturbing the model can never yield stale cached results."""
        model = small_mlp(rng=6)
        images = _pool(model, 4, seed=19)
        engine = Engine(model)
        before = engine.output_gradients(images).copy()
        model.parameter_view().add_scalar(0, 0.5)
        after = engine.output_gradients(images)
        assert not np.array_equal(before, after)
        singles = np.stack(
            [model.output_gradients(images[i]) for i in range(len(images))]
        )
        assert np.abs(after - singles).max() <= TOLERANCE

    def test_cache_disabled_records_no_stats(self):
        model = small_mlp(rng=7)
        images = _pool(model, 3, seed=20)
        engine = Engine(model, cache=False)
        engine.forward(images)
        engine.forward(images)
        assert engine.stats.requests == 0

    def test_invalidate_clears_entries(self):
        model = small_mlp(rng=8)
        images = _pool(model, 3, seed=21)
        engine = Engine(model)
        engine.forward(images)
        engine.invalidate()
        misses = engine.stats.misses
        engine.forward(images)
        assert engine.stats.misses == misses + 1

    def test_batch_validation(self):
        model = small_cnn(rng=9)
        engine = Engine(model)
        with pytest.raises(ValueError):
            engine.forward(np.zeros((0, *model.input_shape)))
        with pytest.raises(ValueError):
            engine.forward(np.zeros((2, 3, 5)))
        with pytest.raises(ValueError):
            engine.output_gradients(_pool(model, 2, seed=0), "median")
        with pytest.raises(ValueError):
            Engine(model, batch_size=0)

    def test_single_sample_promoted_to_batch(self):
        model = small_cnn(rng=10)
        images = _pool(model, 2, seed=22)
        engine = Engine(model)
        masks = engine.activation_masks(images[0])
        assert masks.shape == (1, model.num_parameters())

    def test_engine_bound_to_other_model_rejected(self):
        a, b = small_mlp(rng=11), small_mlp(rng=12)
        engine = Engine(a)
        with pytest.raises(ValueError):
            activation_masks(b, _pool(b, 2, seed=23), engine=engine)

    def test_criterion_override(self):
        model = small_cnn(activation="tanh", rng=13)
        images = _pool(model, 4, seed=24)
        engine = Engine(model)
        loose = engine.activation_masks(images, ActivationCriterion(epsilon=1e-8))
        tight = engine.activation_masks(images, ActivationCriterion(epsilon=1e-1))
        assert loose.sum() >= tight.sum()
        # repeating a criterion is served from its memoized mask matrix
        hits = engine.stats.hits
        again = engine.activation_masks(images, ActivationCriterion(epsilon=1e-1))
        assert engine.stats.hits == hits + 1
        np.testing.assert_array_equal(again, tight)

    def test_masks_rethreshold_memoized_gradient_matrix(self):
        """An explicitly computed gradient matrix is reused by mask queries."""
        model = small_cnn(activation="tanh", rng=16)
        images = _pool(model, 4, seed=28)
        engine = Engine(model)
        grads = engine.output_gradients(images)
        hits = engine.stats.hits
        masks = engine.activation_masks(images, ActivationCriterion(epsilon=1e-3))
        assert engine.stats.hits == hits + 1  # served from the gradient entry
        np.testing.assert_array_equal(masks, np.abs(np.asarray(grads)) > 1e-3)

    def test_max_and_predicted_share_one_cache_entry(self):
        model = small_cnn(rng=15)
        images = _pool(model, 4, seed=27)
        engine = Engine(model)
        g_max = engine.output_gradients(images, "max")
        hits = engine.stats.hits
        g_pred = engine.output_gradients(images, "predicted")
        assert engine.stats.hits == hits + 1  # served from the same entry
        np.testing.assert_array_equal(g_max, g_pred)


class TestBackendsAndCache:
    def test_numpy_backend_registered(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend(NumpyBackend), NumpyBackend)
        instance = NumpyBackend()
        assert get_backend(instance) is instance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("tpu")

    def test_custom_backend_pluggable(self):
        calls = []

        class CountingBackend(NumpyBackend):
            name = "counting-test"

            def forward(self, model, x):
                calls.append(x.shape[0])
                return super().forward(model, x)

        register_backend(CountingBackend)
        try:
            model = small_mlp(rng=14)
            images = _pool(model, 5, seed=25)
            engine = Engine(model, backend="counting-test", batch_size=2)
            logits = engine.forward(images)
            assert calls == [2, 2, 1]
            np.testing.assert_allclose(logits, model.forward(images), atol=TOLERANCE)
        finally:
            from repro.engine import backend as backend_mod

            backend_mod._BACKENDS.pop("counting-test", None)

    def test_unnamed_backend_rejected(self):
        class Nameless(ExecutionBackend):
            pass

        with pytest.raises(ValueError):
            register_backend(Nameless)

    def test_array_fingerprint_semantics(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_fingerprint(a) == array_fingerprint(a.copy())
        assert array_fingerprint(a) != array_fingerprint(a.reshape(4, 3))
        assert array_fingerprint(a) != array_fingerprint(a.astype(np.float32))
        b = a.copy()
        b[0, 0] += 1.0
        assert array_fingerprint(a) != array_fingerprint(b)

    def test_lru_eviction_and_stats(self):
        cache = BatchResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert 0.0 < cache.stats.hit_rate < 1.0
        with pytest.raises(ValueError):
            BatchResultCache(max_entries=0)
        with pytest.raises(ValueError):
            BatchResultCache(max_bytes=0)

    def test_byte_budget_evicts_large_arrays(self):
        one_kb = np.zeros(128, dtype=np.float64)  # 1024 bytes
        cache = BatchResultCache(max_entries=100, max_bytes=2048)
        cache.put("a", one_kb)
        cache.put("b", one_kb)
        assert cache.nbytes == 2048
        cache.put("c", one_kb)  # exceeds the byte budget -> evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") is not None and cache.get("c") is not None
        assert cache.nbytes == 2048
        # a value bigger than the whole budget is never cached
        cache.put("huge", np.zeros(1024, dtype=np.float64))
        assert cache.get("huge") is None
        # replacing a key does not double-count its bytes
        cache.put("b", one_kb)
        assert cache.nbytes == 2048
