"""Chaos suite for the fault-tolerant execution layer.

Covers the ``repro.faults`` primitives (policy, retry controller, injection
plans), the engine's retry/downgrade path, parallel-backend worker
supervision (kill/stall/respawn), mmap read retries and corrupt-store
quarantine, the result store's failure records and torn-line recovery, and
the campaign-level chaos gates: a campaign with injected worker kills and
mmap faults must finish with a store **byte-identical** to the fault-free
run, and a deterministically-failing scenario must be quarantined and heal
on ``resume``.

The campaign gates run on every chaos backend; set ``REPRO_CHAOS_BACKEND``
(``parallel`` or ``model_axis``) to restrict a CI matrix entry to one.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    FailureRecord,
    ResultStore,
    ScenarioRecord,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_main
from repro.coverage.bitmap import MaskMatrix, MmapMaskWriter, quarantine_store
from repro.engine import Engine, ParallelBackend, get_backend
from repro.engine.backend import ExecutionBackend
from repro.faults import (
    CampaignAbortedError,
    CircuitOpenError,
    DispatchTimeoutError,
    FaultPlan,
    FaultPolicy,
    RetryController,
    WorkerCrashError,
    inject,
    is_transient,
)
from repro.models.zoo import small_mlp

#: backends exercised by the campaign chaos gates; a CI matrix entry narrows
#: this to one via REPRO_CHAOS_BACKEND
CHAOS_BACKENDS = (
    [os.environ["REPRO_CHAOS_BACKEND"]]
    if os.environ.get("REPRO_CHAOS_BACKEND")
    else ["parallel", "model_axis"]
)

#: zero-sleep policy for tests that retry
FAST_POLICY = FaultPolicy(backoff_base_s=0.0)


def tiny_spec(**overrides: object) -> CampaignSpec:
    """A campaign small enough to run inside a unit test."""
    base = dict(
        name="chaos",
        attacks=("sba", "random"),
        models=("mnist",),
        criteria=("default",),
        strategies=("random",),
        budgets=(2, 3),
        trials=2,
        train_size=24,
        test_size=12,
        epochs=1,
        width_multiplier=0.08,
        candidate_pool=12,
        gradient_updates=3,
        reference_inputs=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)  # type: ignore[arg-type]


def record(digest: str, detections: int = 1) -> ScenarioRecord:
    return ScenarioRecord(
        digest=digest,
        scenario={"model": "mnist", "attack": "sba"},
        seed=0,
        trials=2,
        detections=detections,
        coverage=0.5,
    )


# ---------------------------------------------------------------------------
# policy + controller
# ---------------------------------------------------------------------------


class TestFaultPolicy:
    def test_defaults_validate(self):
        FaultPolicy().validate()

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_jitter=0.5)
        delays = [policy.backoff_delay(a, key="forward") for a in (1, 2, 3)]
        assert delays == [policy.backoff_delay(a, key="forward") for a in (1, 2, 3)]
        for attempt, delay in enumerate(delays, start=1):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.5
        # jitter depends on the key: two ops don't sleep in lockstep
        assert delays != [policy.backoff_delay(a, key="masks") for a in (1, 2, 3)]

    def test_backoff_without_jitter_is_exact(self):
        policy = FaultPolicy(backoff_base_s=0.25, backoff_factor=3.0, backoff_jitter=0.0)
        assert policy.backoff_delay(1) == 0.25
        assert policy.backoff_delay(2) == 0.75
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff_delay(0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPolicy field"):
            FaultPolicy.from_dict({"max_retries": 1, "bogus": 2})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_retries", -1),
            ("backoff_base_s", -0.1),
            ("backoff_factor", 0.5),
            ("backoff_jitter", -1.0),
            ("dispatch_timeout_s", 0.0),
            ("breaker_threshold", 0),
        ],
    )
    def test_validate_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            FaultPolicy.from_dict({field: value})

    def test_coerce(self):
        policy = FaultPolicy(max_retries=5)
        assert FaultPolicy.coerce(None) is None
        assert FaultPolicy.coerce(policy) is policy
        assert FaultPolicy.coerce({"max_retries": 5}) == policy
        with pytest.raises(TypeError):
            FaultPolicy.coerce(3)

    def test_roundtrip(self):
        policy = FaultPolicy(max_retries=7, dispatch_timeout_s=2.5)
        assert FaultPolicy.from_dict(policy.to_dict()) == policy


class TestRetryController:
    def _controller(self, **overrides):
        sleeps: list = []
        policy = FaultPolicy(backoff_base_s=0.01).with_overrides(**overrides)
        return RetryController(policy, sleeper=sleeps.append), sleeps

    def test_success_passthrough(self):
        controller, sleeps = self._controller()
        assert controller.run(lambda: 42) == 42
        assert sleeps == [] and controller.stats.retries == 0

    def test_transient_retried_with_exact_backoff(self):
        controller, sleeps = self._controller(max_retries=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert controller.run(flaky, key="forward") == "ok"
        assert len(attempts) == 3
        assert controller.stats.retries == 2 and controller.stats.failures == 2
        policy = controller.policy
        assert sleeps == [
            policy.backoff_delay(1, "forward"),
            policy.backoff_delay(2, "forward"),
        ]
        assert [e["event"] for e in controller.events].count("transient_failure") == 2

    def test_logic_errors_propagate_immediately(self):
        controller, _ = self._controller(max_retries=5)
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError, match="logic bug"):
            controller.run(broken)
        assert len(calls) == 1 and controller.stats.failures == 0

    def test_exhaustion_raises_the_original_error(self):
        controller, _ = self._controller(max_retries=1, breaker_threshold=99)

        def always():
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError, match="still down"):
            controller.run(always)
        assert controller.stats.retries == 1 and controller.stats.failures == 2

    def test_breaker_without_downgrade_opens(self):
        controller, _ = self._controller(max_retries=99, breaker_threshold=2)
        calls = []

        def always():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(CircuitOpenError):
            controller.run(always)
        assert len(calls) == 2
        assert controller.stats.breaker_trips == 1
        assert any(e["event"] == "breaker_trip" for e in controller.events)

    def test_breaker_downgrade_invoked_once_then_retries(self):
        controller, _ = self._controller(max_retries=99, breaker_threshold=2)
        state = {"healthy": False, "downgrades": 0}

        def call():
            if not state["healthy"]:
                raise OSError("down")
            return "healed"

        def downgrade(exc):
            state["healthy"] = True
            state["downgrades"] += 1

        assert controller.run(call, downgrade=downgrade) == "healed"
        assert state["downgrades"] == 1
        assert controller.stats.downgrades == 1 and controller.downgraded

    def test_success_resets_the_breaker(self):
        controller, _ = self._controller(max_retries=2, breaker_threshold=3)
        for _ in range(4):
            flaked = []

            def once():
                if not flaked:
                    flaked.append(1)
                    raise OSError("blip")
                return "ok"

            assert controller.run(once) == "ok"
        # 4 isolated blips never trip a threshold-3 breaker
        assert controller.stats.breaker_trips == 0
        assert controller.consecutive_failures == 0

    def test_pending_handover_counts_as_first_failure(self):
        controller, sleeps = self._controller(max_retries=2)
        assert controller.run(lambda: "ok", pending=OSError("handover")) == "ok"
        assert controller.stats.failures == 1 and controller.stats.retries == 1
        assert len(sleeps) == 1

    def test_pending_logic_error_propagates(self):
        controller, _ = self._controller()
        with pytest.raises(KeyError):
            controller.run(lambda: "ok", pending=KeyError("nope"))


# ---------------------------------------------------------------------------
# injection plans
# ---------------------------------------------------------------------------


class TestInjection:
    def test_no_plan_is_inert(self):
        assert not inject.active()
        assert inject.check("engine.dispatch", op="forward") is None

    def test_plans_do_not_nest(self):
        with inject.activate(FaultPlan()):
            with pytest.raises(RuntimeError, match="already active"):
                with inject.activate(FaultPlan()):
                    pass
        assert not inject.active()

    def test_at_schedule(self):
        plan = FaultPlan()
        plan.raise_error("site", exception="IOError", at=(1, 3))
        with inject.activate(plan):
            hits = []
            for i in range(5):
                try:
                    inject.check("site")
                    hits.append(False)
                except IOError:
                    hits.append(True)
        assert hits == [False, True, False, True, False]
        assert plan.fired("site") == 2

    def test_every_and_times_schedule(self):
        plan = FaultPlan()
        fault = plan.raise_error("site", every=2, times=2)
        with inject.activate(plan):
            outcomes = []
            for _ in range(6):
                try:
                    inject.check("site")
                    outcomes.append("ok")
                except IOError:
                    outcomes.append("boom")
        # fires at ordinals 0 and 2, then the times cap holds
        assert outcomes == ["boom", "ok", "boom", "ok", "ok", "ok"]
        assert fault.hits == 6 and fault.fires == 2

    def test_match_filters_context(self):
        plan = FaultPlan()
        plan.raise_error("campaign.scenario", exception="RuntimeError", attack="random")
        with inject.activate(plan):
            inject.check("campaign.scenario", model="mnist", attack="sba")
            with pytest.raises(RuntimeError):
                inject.check("campaign.scenario", model="mnist", attack="random")
        assert plan.log == [
            {
                "site": "campaign.scenario",
                "action": "raise",
                "ordinal": 0,
                "model": "mnist",
                "attack": "random",
            }
        ]

    def test_one_fault_fires_per_check_but_all_counters_advance(self):
        plan = FaultPlan()
        first = plan.raise_error("site", exception="OSError")
        second = plan.raise_error("site", exception="TimeoutError")
        with inject.activate(plan):
            with pytest.raises(OSError):
                inject.check("site")
        assert first.fires == 1 and second.fires == 0
        assert first.hits == 1 and second.hits == 1

    def test_latency_sleeps_and_returns_none(self):
        plan = FaultPlan()
        plan.latency("site", 0.01, times=1)
        with inject.activate(plan):
            start = time.perf_counter()
            assert inject.check("site") is None
            assert time.perf_counter() - start >= 0.01

    def test_bad_action_and_exception_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            inject.Fault(site="x", action="explode")
        plan = FaultPlan()
        plan.raise_error("site", exception="NotAnException")
        with inject.activate(plan), pytest.raises(ValueError, match="unknown exception"):
            inject.check("site")


# ---------------------------------------------------------------------------
# engine retry + downgrade
# ---------------------------------------------------------------------------


_numpy_backend = get_backend("numpy")


class FlakyBackend(ExecutionBackend):
    """Delegates to numpy but fails the first ``fail_times`` forward calls."""

    name = "flaky"

    def __init__(self, fail_times: int, exc: type = OSError) -> None:
        self.fail_times = fail_times
        self.exc = exc
        self.calls = 0

    def forward(self, model, batch):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc(f"flaky #{self.calls}")
        return _numpy_backend.forward(model, batch)

    def __getattr__(self, name):
        return getattr(_numpy_backend, name)


class TestEngineFaults:
    @pytest.fixture(scope="class")
    def model(self):
        return small_mlp(rng=0)

    @pytest.fixture(scope="class")
    def batch(self):
        return np.random.default_rng(0).normal(size=(8, 16))

    def test_no_policy_propagates_first_error(self, model, batch):
        engine = Engine(model, backend=FlakyBackend(1), cache=False)
        with pytest.raises(OSError):
            engine.forward(batch)

    def test_transient_failure_retried_and_counted(self, model, batch):
        engine = Engine(
            model, backend=FlakyBackend(1), cache=False, fault_policy=FAST_POLICY
        )
        expected = Engine(model, cache=False).forward(batch)
        assert np.array_equal(engine.forward(batch), expected)
        assert engine.stats.retries == 1
        assert engine.stats.downgrades == 0

    def test_breaker_downgrades_to_serial_backend(self, model, batch):
        engine = Engine(
            model,
            backend=FlakyBackend(99),
            cache=False,
            fault_policy=FaultPolicy(
                max_retries=10, breaker_threshold=3, backoff_base_s=0.0
            ),
        )
        expected = Engine(model, cache=False).forward(batch)
        assert np.array_equal(engine.forward(batch), expected)
        assert engine.backend.name == "numpy"
        assert engine.stats.downgrades == 1
        downgrades = [e for e in engine.fault_events if e.get("event") == "downgrade"]
        assert downgrades and downgrades[0]["from"] == "flaky"
        assert downgrades[0]["to"] == "numpy"

    def test_logic_error_never_retried(self, model, batch):
        backend = FlakyBackend(99, exc=ValueError)
        engine = Engine(model, backend=backend, cache=False, fault_policy=FAST_POLICY)
        with pytest.raises(ValueError):
            engine.forward(batch)
        assert backend.calls == 1 and engine.stats.retries == 0

    def test_injected_dispatch_fault_heals_under_policy(self, model, batch):
        engine = Engine(model, cache=False, fault_policy=FAST_POLICY)
        plan = FaultPlan()
        plan.raise_error("engine.dispatch", exception="OSError", at=(0,))
        with inject.activate(plan):
            out = engine.forward(batch)
        assert np.array_equal(out, Engine(model, cache=False).forward(batch))
        assert plan.fired("engine.dispatch") == 1
        assert engine.stats.retries == 1

    def test_injected_dispatch_fault_fatal_without_policy(self, model, batch):
        engine = Engine(model, cache=False)
        plan = FaultPlan()
        plan.raise_error("engine.dispatch", exception="OSError", at=(0,))
        with inject.activate(plan), pytest.raises(OSError):
            engine.forward(batch)


# ---------------------------------------------------------------------------
# parallel-backend supervision
# ---------------------------------------------------------------------------


class TestParallelSupervision:
    @pytest.fixture(scope="class")
    def model(self):
        return small_mlp(rng=0)

    @pytest.fixture(scope="class")
    def batch(self):
        return np.random.default_rng(1).normal(size=(16, 16))

    @pytest.fixture(scope="class")
    def expected(self, model, batch):
        return Engine(model, cache=False).forward(batch)

    def test_killed_workers_respawn_and_requeue(self, model, batch, expected):
        plan = FaultPlan()
        plan.kill_worker(worker=-1, at=(0,))
        with ParallelBackend(workers=2, fault_policy=FAST_POLICY) as backend:
            engine = Engine(model, backend=backend, cache=False)
            with inject.activate(plan):
                out = engine.forward(batch)
            assert np.array_equal(out, expected)
            assert backend.cache_stats.restarts >= 1
            assert engine.stats.restarts >= 1
        assert plan.fired("parallel.dispatch") == 1

    def test_stalled_workers_hit_dispatch_timeout_and_heal(
        self, model, batch, expected
    ):
        plan = FaultPlan()
        plan.stall_worker(worker=-1, at=(0,))
        policy = FaultPolicy(backoff_base_s=0.0, dispatch_timeout_s=1.0)
        with ParallelBackend(workers=2, fault_policy=policy) as backend:
            engine = Engine(model, backend=backend, cache=False)
            with inject.activate(plan):
                out = engine.forward(batch)
            assert np.array_equal(out, expected)
            assert backend.cache_stats.restarts >= 1

    def test_persistent_kills_exhaust_retries(self, model, batch):
        plan = FaultPlan()
        plan.kill_worker(worker=-1, every=1)
        policy = FaultPolicy(backoff_base_s=0.0, max_retries=1)
        with ParallelBackend(workers=2, fault_policy=policy) as backend:
            engine = Engine(model, backend=backend, cache=False)
            with inject.activate(plan), pytest.raises(WorkerCrashError):
                engine.forward(batch)

    def test_close_reaps_workers_and_shm(self, model, batch):
        shm_dir = Path("/dev/shm")
        before = set(os.listdir(shm_dir)) if shm_dir.is_dir() else set()
        backend = ParallelBackend(workers=2)
        engine = Engine(model, backend=backend, cache=False)
        engine.forward(batch)
        procs = list(backend._pool()._pool)
        assert all(p.is_alive() for p in procs)
        backend.close()
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not any(p.is_alive() for p in procs)
        if shm_dir.is_dir():
            leaked = set(os.listdir(shm_dir)) - before
            assert not leaked, f"orphaned shared-memory blocks: {leaked}"
        backend.close()  # idempotent

    def test_context_manager_closes(self, model, batch):
        with ParallelBackend(workers=2) as backend:
            assert isinstance(backend, ParallelBackend)
            Engine(model, backend=backend, cache=False).forward(batch)
            procs = list(backend._pool()._pool)
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not any(p.is_alive() for p in procs)


# ---------------------------------------------------------------------------
# mmap read retries + spill quarantine
# ---------------------------------------------------------------------------


class TestMmapFaults:
    @pytest.fixture()
    def store(self, tmp_path):
        dense = MaskMatrix.from_dense(
            np.random.default_rng(3).random((12, 70)) > 0.5
        )
        with MmapMaskWriter(tmp_path / "store.masks", dense.nbits) as writer:
            writer.append(dense.words)
            return dense, writer.close(memory_budget_bytes=num_bytes_per_row(dense))

    def test_transient_window_read_heals(self, store):
        dense, mmap_store = store
        plan = FaultPlan()
        plan.raise_error("mmap.window", exception="OSError", at=(0,))
        with inject.activate(plan):
            counts = mmap_store.counts()
        np.testing.assert_array_equal(counts, dense.counts())
        assert plan.fired("mmap.window") == 1

    def test_read_retries_exhaust(self, store):
        _, mmap_store = store
        mmap_store.read_retries = 0
        plan = FaultPlan()
        plan.raise_error("mmap.window", exception="OSError", at=(0,))
        with inject.activate(plan), pytest.raises(OSError):
            mmap_store.counts()

    def test_quarantine_store_moves_to_sidecar(self, tmp_path):
        path = tmp_path / "corrupt.masks"
        path.write_bytes(b"garbage")
        sidecar = quarantine_store(path)
        assert not path.exists()
        assert sidecar == tmp_path / "quarantine" / "corrupt.masks"
        assert sidecar.read_bytes() == b"garbage"
        # collisions get a numeric suffix instead of overwriting evidence
        path.write_bytes(b"second")
        assert quarantine_store(path).name != sidecar.name

    def test_corrupt_spill_store_quarantined_and_rebuilt(self, tmp_path):
        model = small_mlp(rng=0)
        pool = np.random.default_rng(5).random((10, 16))
        reference = Engine(model, cache=False).packed_activation_masks(pool)
        spilled = Engine(model, cache=False).packed_activation_masks(
            pool, spill_dir=tmp_path
        )
        store_path = Path(spilled.path)
        # tear the store the way a crashed writer would
        store_path.write_bytes(store_path.read_bytes()[:-8])
        rebuilt = Engine(model, cache=False).packed_activation_masks(
            pool, spill_dir=tmp_path
        )
        assert np.array_equal(
            np.asarray(rebuilt.words, dtype=np.uint64), reference.words
        )
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name == store_path.name


def num_bytes_per_row(masks: MaskMatrix) -> int:
    return masks.words.shape[1] * 8


# ---------------------------------------------------------------------------
# result-store failure records + durability
# ---------------------------------------------------------------------------


class TestStoreFailures:
    def test_failure_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        failure = FailureRecord.from_exception(
            "abc", {"model": "mnist"}, 7, OSError("io down"), stage="package"
        )
        store.append_failure(failure)
        assert store.quarantined_digests() == {"abc"}
        assert "abc" not in store
        assert store.completed_digests() == set()
        reloaded = ResultStore(tmp_path / "s.jsonl")
        got = reloaded.get_failure("abc")
        assert got is not None
        assert (got.error, got.message, got.stage, got.attempts) == (
            "OSError",
            "io down",
            "package",
            1,
        )

    def test_kind_discriminator_on_disk(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(record("ok"))
        store.append_failure(
            FailureRecord.from_exception("bad", {}, 0, RuntimeError("x"))
        )
        lines = [
            json.loads(line)
            for line in (tmp_path / "s.jsonl").read_text().splitlines()
        ]
        assert "kind" not in lines[0]
        assert lines[1]["kind"] == "failure"

    def test_repeat_failure_replaces_with_attempt_count(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append_failure(FailureRecord.from_exception("d", {}, 0, OSError("1")))
        store.append_failure(
            FailureRecord.from_exception("d", {}, 0, OSError("2"), attempts=2)
        )
        reloaded = ResultStore(path)
        assert len(reloaded.failures()) == 1
        assert reloaded.get_failure("d").attempts == 2

    def test_success_after_failure_restores_byte_identity(self, tmp_path):
        clean, healed = tmp_path / "clean.jsonl", tmp_path / "healed.jsonl"
        s1 = ResultStore(clean)
        s1.append(record("a"))
        s1.append(record("b"))

        s2 = ResultStore(healed)
        s2.append(record("a"))
        s2.append_failure(FailureRecord.from_exception("b", {}, 0, OSError("blip")))
        # reload in between: the repair machinery must survive persistence
        s3 = ResultStore(healed)
        s3.append(record("b"))
        assert healed.read_bytes() == clean.read_bytes()
        assert ResultStore(healed).quarantined_digests() == set()

    def test_failure_for_completed_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(record("done"))
        with pytest.raises(ValueError, match="already succeeded"):
            store.append_failure(
                FailureRecord.from_exception("done", {}, 0, OSError("x"))
            )

    def test_stale_failure_after_success_dropped_on_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(record("a"))
        # simulate an out-of-band writer appending a stale failure line
        failure = FailureRecord.from_exception("a", {}, 0, OSError("stale"))
        with path.open("a", encoding="utf-8") as fh:
            fh.write(failure.to_json_line() + "\n")
        reloaded = ResultStore(path)
        assert reloaded.failures() == []
        reloaded.append(record("b"))  # triggers the pending repair
        final = ResultStore(path)
        assert final.completed_digests() == {"a", "b"}
        assert "stale" not in path.read_text()

    def test_durable_append_fsyncs(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        store = ResultStore(tmp_path / "s.jsonl", durable=True)
        store.append(record("a"))
        store.append_failure(FailureRecord.from_exception("b", {}, 0, OSError("x")))
        assert len(synced) == 2

    def test_default_append_does_not_fsync(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            os, "fsync", lambda fd: pytest.fail("fsync called without durable=True")
        )
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(record("a"))


class TestConcurrentAppendRecovery:
    """Satellite: two writers, one hard-killed mid-append, full recovery."""

    WRITER = """
import sys, time
sys.path.insert(0, {src!r})
from repro.campaign.store import ResultStore, ScenarioRecord

prefix, count, path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
store = ResultStore.__new__(ResultStore)
import pathlib
store.path = pathlib.Path(path)
store.durable = False
store._records, store._digests, store._failures = [], set(), {{}}
store._entries, store._pending_repair = [], None
print("ready", flush=True)
for i in range(count):
    store.append(ScenarioRecord(
        digest=f"{{prefix}}-{{i}}", scenario={{"model": "mnist"}}, seed=i,
        trials=2, detections=1, coverage=0.5))
    time.sleep(0.002)
"""

    def test_hard_killed_writer_leaves_recoverable_store(self, tmp_path):
        path = tmp_path / "contended.jsonl"
        src = str(Path(__file__).resolve().parents[1] / "src")
        script = self.WRITER.format(src=src)

        def launch(prefix: str, count: int) -> subprocess.Popen:
            proc = subprocess.Popen(
                [sys.executable, "-c", script, prefix, str(count), str(path)],
                stdout=subprocess.PIPE,
                text=True,
            )
            assert proc.stdout.readline().strip() == "ready"
            return proc

        survivor = launch("a", 40)
        victim = launch("b", 40)
        time.sleep(0.05)  # let both interleave some appends
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert survivor.wait(timeout=30) == 0

        # the loader must recover every complete record: all 40 of the
        # survivor's, plus whatever the victim flushed before SIGKILL
        store = ResultStore(path)
        digests = store.completed_digests()
        assert {f"a-{i}" for i in range(40)} <= digests
        victim_count = sum(1 for d in digests if d.startswith("b-"))
        assert victim_count <= 40
        # appending after recovery still works (repairs any torn tail)
        store.append(record("post-recovery"))
        assert "post-recovery" in ResultStore(path).completed_digests()


# ---------------------------------------------------------------------------
# campaign chaos gates
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free reference run: store bytes + summary."""
    path = tmp_path_factory.mktemp("baseline") / "store.jsonl"
    summary = run_campaign(tiny_spec(), str(path))
    assert summary.executed == 4 and summary.failed == 0
    return path.read_bytes()


class TestCampaignChaos:
    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_store_byte_identical_under_injected_faults(
        self, backend, baseline, tmp_path
    ):
        """The headline chaos gate: worker kills on every other dispatch plus
        one mmap read failure must not change a single stored byte."""
        plan = FaultPlan()
        if backend == "parallel":
            plan.kill_worker(worker=-1, every=2, times=2)
        else:
            plan.raise_error("engine.dispatch", exception="OSError", every=2, times=2)
        plan.raise_error("mmap.window", exception="OSError", at=(0,))
        store = tmp_path / "chaos.jsonl"
        with inject.activate(plan):
            summary = run_campaign(
                tiny_spec(),
                str(store),
                backend=backend,
                workers=2 if backend == "parallel" else None,
                fault_policy=FAST_POLICY,
                spill_dir=tmp_path / "spill",
            )
        assert summary.failed == 0
        assert plan.fired() > 0, "the chaos plan never fired — gate is vacuous"
        assert plan.fired("mmap.window") == 1
        assert store.read_bytes() == baseline

    def test_failing_scenario_quarantined_then_heals_on_resume(
        self, baseline, tmp_path
    ):
        store = tmp_path / "quarantine.jsonl"
        plan = FaultPlan()
        plan.raise_error(
            "campaign.scenario",
            exception="RuntimeError",
            message="deterministic scenario bug",
            attack="random",
        )
        with inject.activate(plan):
            summary = run_campaign(tiny_spec(), str(store))
        # both budgets of the random attack share the failed group
        assert summary.failed == 2 and summary.executed == 2
        loaded = ResultStore(store)
        assert len(loaded.quarantined_digests()) == 2
        failure = loaded.failures()[0]
        assert failure.error == "RuntimeError"
        assert failure.stage == "trials"
        assert failure.scenario["attack"] == "random"

        # resume without the plan: quarantined scenarios re-run and the
        # final store is byte-identical to the never-failed baseline
        resumed = run_campaign(tiny_spec(), str(store))
        assert resumed.executed == 2 and resumed.skipped == 2
        assert resumed.failed == 0
        assert store.read_bytes() == baseline

    def test_repeat_failures_accumulate_attempts(self, tmp_path):
        store = tmp_path / "attempts.jsonl"
        plan = FaultPlan()
        plan.raise_error("campaign.scenario", exception="RuntimeError", attack="random")
        with inject.activate(plan):
            run_campaign(tiny_spec(), str(store))
        plan2 = FaultPlan()
        plan2.raise_error("campaign.scenario", exception="RuntimeError", attack="random")
        with inject.activate(plan2):
            run_campaign(tiny_spec(), str(store))
        failures = ResultStore(store).failures()
        assert failures and all(f.attempts == 2 for f in failures)

    def test_max_failures_bounds_blast_radius(self, tmp_path):
        store = tmp_path / "abort.jsonl"
        plan = FaultPlan()
        plan.raise_error("campaign.scenario", exception="RuntimeError", attack="sba")
        with inject.activate(plan), pytest.raises(CampaignAbortedError):
            run_campaign(tiny_spec(), str(store), max_failures=0)
        # the failures that tripped the bound are still on disk
        assert len(ResultStore(store).failures()) == 2

    def test_keyboard_interrupt_is_not_quarantined(self, tmp_path, monkeypatch):
        from repro.campaign.runner import CampaignRunner

        monkeypatch.setattr(
            CampaignRunner,
            "_run_attack_group",
            lambda self, *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        store_path = tmp_path / "interrupt.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(tiny_spec(), str(store_path))
        assert ResultStore(store_path).failures() == []


class TestCampaignCLI:
    def _args(self, tmp_path, *extra: str) -> list:
        spec_path = tiny_spec().save(tmp_path / "spec.json")
        return [
            "run",
            "--spec",
            str(spec_path),
            "--store",
            str(tmp_path / "store.jsonl"),
            *extra,
        ]

    def test_exit_130_on_keyboard_interrupt(self, tmp_path, monkeypatch, capsys):
        import repro.campaign.__main__ as cli

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt()

        monkeypatch.setattr(cli, "run_campaign", interrupted)
        assert campaign_main(self._args(tmp_path)) == 130
        assert "resume" in capsys.readouterr().err

    def test_exit_3_on_abort(self, tmp_path, monkeypatch, capsys):
        import repro.campaign.__main__ as cli

        def aborted(*args, **kwargs):
            raise CampaignAbortedError("too many failures")

        monkeypatch.setattr(cli, "run_campaign", aborted)
        assert campaign_main(self._args(tmp_path, "--max-failures", "0")) == 3
        assert "aborted" in capsys.readouterr().err

    def test_exit_2_when_failures_remain(self, tmp_path):
        spec_path = tiny_spec().save(tmp_path / "spec.json")
        store_path = tmp_path / "store.jsonl"
        plan = FaultPlan()
        plan.raise_error("campaign.scenario", exception="RuntimeError", attack="random")
        with inject.activate(plan):
            code = campaign_main(
                ["run", "--spec", str(spec_path), "--store", str(store_path)]
            )
        assert code == 2
        assert ResultStore(store_path).quarantined_digests()

    def test_exit_0_clean_run_and_resume(self, tmp_path):
        args = self._args(tmp_path)
        assert campaign_main(args) == 0
        # resume of a complete store is also clean
        assert campaign_main(["resume", *args[1:]]) == 0

    def test_cli_flags_reach_the_runner(self, tmp_path, monkeypatch):
        import repro.campaign.__main__ as cli

        captured = {}

        def fake_run_campaign(spec, store, **kwargs):
            captured.update(kwargs)
            captured["durable"] = store.durable
            from repro.campaign.runner import CampaignSummary

            return CampaignSummary(total=0, executed=0, skipped=0, wall_s=0.0)

        monkeypatch.setattr(cli, "run_campaign", fake_run_campaign)
        assert (
            campaign_main(
                self._args(
                    tmp_path,
                    "--durable",
                    "--max-failures",
                    "5",
                    "--retries",
                    "4",
                    "--dispatch-timeout",
                    "9.5",
                    "--spill-dir",
                    str(tmp_path / "spill"),
                )
            )
            == 0
        )
        assert captured["durable"] is True
        assert captured["max_failures"] == 5
        assert captured["fault_policy"].max_retries == 4
        assert captured["fault_policy"].dispatch_timeout_s == 9.5
        assert captured["spill_dir"] == str(tmp_path / "spill")

    def test_is_transient_taxonomy(self):
        assert is_transient(OSError("x"))
        assert is_transient(TimeoutError("x"))
        assert is_transient(WorkerCrashError("x"))
        assert is_transient(DispatchTimeoutError("x"))
        assert not is_transient(ValueError("x"))
        assert not is_transient(KeyboardInterrupt())
