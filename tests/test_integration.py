"""End-to-end integration tests: the full vendor → attacker → user story."""

import numpy as np
import pytest

from repro.attacks import (
    BitFlipAttack,
    GradientDescentAttack,
    RandomPerturbation,
    SingleBiasAttack,
)
from repro.coverage import set_validation_coverage
from repro.testgen import CombinedGenerator, NeuronCoverageSelector
from repro.utils.config import DetectionConfig
from repro.validation import (
    DetectionExperiment,
    IPVendor,
    ValidationPackage,
    default_attack_factories,
    validate_ip,
)


class TestVendorUserStory:
    def test_full_lifecycle_with_serialization(self, trained_cnn, digit_dataset, tmp_path):
        """Vendor generates & ships a package; user validates clean and tampered IPs."""
        vendor = IPVendor(trained_cnn, digit_dataset)
        package = vendor.release(
            num_tests=8, candidate_pool=25, rng=0, max_updates=10
        )
        path = package.save(tmp_path / "release" / "package.npz")

        # ...the package travels to the user...
        received = ValidationPackage.load(path)

        # clean IP passes
        assert validate_ip(trained_cnn, received).passed

        # each attack family is caught by the same package
        attacks = [
            SingleBiasAttack(magnitude=15.0, rng=1),
            GradientDescentAttack(digit_dataset.images[:10], rng=2),
            RandomPerturbation(num_parameters=10, relative_std=3.0, rng=3),
            BitFlipAttack(num_parameters=2, rng=4),
        ]
        detected = [
            validate_ip(attack.apply(trained_cnn).model, received).detected
            for attack in attacks
        ]
        # perturbations can in principle land entirely on uncovered parameters,
        # but with ~8 greedy tests at least most attack families must be caught
        assert sum(detected) >= 3

    def test_detection_rate_favors_parameter_coverage(self, trained_cnn, digit_dataset):
        """Scaled-down Tables II/III: the proposed tests detect at least as well
        as neuron-coverage tests for every attack at equal budget."""
        budget = 6
        vendor = IPVendor(trained_cnn, digit_dataset)
        combined = CombinedGenerator(
            trained_cnn, digit_dataset, candidate_pool=30, rng=0, max_updates=10
        ).generate(budget)
        neuron = NeuronCoverageSelector(
            trained_cnn, digit_dataset, candidate_pool=30, rng=0
        ).generate(budget)
        packages = {
            "parameter-coverage": vendor.build_package(combined),
            "neuron-coverage": vendor.build_package(neuron),
        }
        config = DetectionConfig(
            trials=15, test_budgets=(3, budget), attacks=("sba", "random"), seed=7
        )
        factories = default_attack_factories(
            digit_dataset.images[:10], random_parameters=5
        )
        table = DetectionExperiment(trained_cnn, packages, factories, config).run()

        for attack in ("sba", "random"):
            param_rate = table.rate("parameter-coverage", attack, budget)
            neuron_rate = table.rate("neuron-coverage", attack, budget)
            # paired trials: the parameter-coverage tests may tie but should
            # not lose by a wide margin
            assert param_rate >= neuron_rate - 0.15

    def test_coverage_predicts_detection(self, trained_cnn, digit_dataset):
        """Higher-coverage test sets should never detect dramatically worse."""
        vendor = IPVendor(trained_cnn, digit_dataset)
        strong = vendor.build_package(
            CombinedGenerator(
                trained_cnn, digit_dataset, candidate_pool=25, rng=0, max_updates=10
            ).generate(6)
        )
        weak = vendor.build_package(digit_dataset.images[:1])

        strong_cov = strong.metadata["validation_coverage"]
        weak_cov = weak.metadata["validation_coverage"]
        assert strong_cov > weak_cov

        detections_strong = 0
        detections_weak = 0
        for seed in range(10):
            tampered = RandomPerturbation(num_parameters=3, rng=seed).apply(trained_cnn).model
            detections_strong += validate_ip(tampered, strong).detected
            detections_weak += validate_ip(tampered, weak).detected
        assert detections_strong >= detections_weak
