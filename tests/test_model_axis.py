"""Tests for the model-axis batched backend (stacked multi-model dispatch).

The acceptance bar: fusing perturbed copies along a leading model axis must
be *observably free* — stacked logits, gradients, collected activations,
detection tables and greedy selections are bit-identical to running each
copy through its own engine on the numpy backend, on both Table-I
architectures.  Speed is asserted in ``benchmarks/bench_engine.py``;
correctness lives here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import bias_flat_indices
from repro.attacks.sba import SingleBiasAttack
from repro.data.datasets import Dataset
from repro.engine import Engine, ModelAxisBackend
from repro.engine.backend import NumpyBackend, get_backend
from repro.engine.model_axis import DEFAULT_MAX_MODELS, first_divergence
from repro.models.zoo import cifar_cnn, mnist_cnn
from repro.nn.stacked import StackedSequential
from repro.testgen.selection import TrainingSetSelector
from repro.utils.config import DetectionConfig
from repro.validation.detection import DetectionExperiment, default_attack_factories
from repro.validation.vendor import IPVendor


@pytest.fixture(scope="module")
def mnist_model():
    """The Table-I MNIST architecture (Tanh), width-scaled."""
    return mnist_cnn(width_multiplier=0.125, input_size=28, rng=0)


@pytest.fixture(scope="module")
def cifar_model():
    """The Table-I CIFAR architecture (ReLU), width-scaled."""
    return cifar_cnn(width_multiplier=0.0625, input_size=32, rng=0)


@pytest.fixture(scope="module")
def mnist_pool(mnist_model):
    rng = np.random.default_rng(1)
    return rng.random((12, *mnist_model.input_shape))


@pytest.fixture(scope="module")
def cifar_pool(cifar_model):
    rng = np.random.default_rng(2)
    return rng.random((12, *cifar_model.input_shape))


def sba_copies(model, trials, seed=100):
    """Perturbed copies with faults on rng-chosen (arbitrary-layer) biases."""
    return [
        SingleBiasAttack(rng=seed + trial).apply(model).model
        for trial in range(trials)
    ]


def head_copies(model, trials, magnitude=10.0):
    """Copies perturbed on distinct output-head biases (deepest divergence)."""
    biases = bias_flat_indices(model)
    copies = []
    for trial in range(trials):
        copy = model.copy()
        copy.parameter_view().add_scalar(int(biases[-1 - trial]), magnitude)
        copies.append(copy)
    return copies


class TestStackedSequentialEquivalence:
    """Stacked outputs == per-model outputs, bit for bit, on both archs."""

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    def test_forward_bitwise_identical(self, arch, request):
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")
        copies = sba_copies(model, 4) + [model.copy()]
        stacked = StackedSequential(copies).forward(pool)
        for m, copy in enumerate(copies):
            assert np.array_equal(stacked[m], copy.forward(pool, training=False))

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    @pytest.mark.parametrize("scalarization", ["sum", "max"])
    def test_gradients_bitwise_identical(self, arch, scalarization, request):
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")[:4]
        copies = sba_copies(model, 3)
        stacked = StackedSequential(copies).output_gradients_batch(
            pool, scalarization
        )
        for m, copy in enumerate(copies):
            assert np.array_equal(
                stacked[m], copy.output_gradients_batch(pool, scalarization)
            )

    def test_forward_collect_bitwise_identical(self, mnist_model, mnist_pool):
        copies = sba_copies(mnist_model, 3)
        collected = StackedSequential(copies).forward_collect(mnist_pool[:4])
        assert len(collected) == len(mnist_model.layers)
        for m, copy in enumerate(copies):
            reference = copy.forward_collect(mnist_pool[:4])
            for layer_out, ref in zip(collected, reference):
                assert np.array_equal(layer_out[m], ref)

    def test_identical_copies_share_one_pass(self, mnist_model, mnist_pool):
        # all-equal stacks never tile: the output is a broadcast of one pass
        copies = [mnist_model.copy() for _ in range(3)]
        out = StackedSequential(copies).forward(mnist_pool[:4])
        expected = mnist_model.forward(mnist_pool[:4], training=False)
        for m in range(3):
            assert np.array_equal(out[m], expected)

    def test_start_mode_resumes_mid_network(self, mnist_model, mnist_pool):
        # feeding a layer's true input activation with start=<layer> must
        # reproduce the full forward exactly (the trunk-sharing contract)
        copies = head_copies(mnist_model, 2)
        split = first_divergence(mnist_model, copies[0])
        trunk = mnist_pool[:4]
        for layer in mnist_model.layers[:split]:
            trunk = layer.forward(trunk)
        resumed = StackedSequential(copies, start=split).forward(trunk)
        full = StackedSequential(copies).forward(mnist_pool[:4])
        assert np.array_equal(resumed, full)

    def test_start_mode_rejects_gradient_queries(self, mnist_model, mnist_pool):
        copies = head_copies(mnist_model, 2)
        stack = StackedSequential(copies, start=1)
        with pytest.raises(ValueError, match="layer 0"):
            stack.output_gradients_batch(mnist_pool[:2])

    def test_validation_errors(self, mnist_model, cifar_model):
        with pytest.raises(ValueError, match="at least one model"):
            StackedSequential([])
        with pytest.raises(ValueError, match="architecture"):
            StackedSequential([mnist_model, cifar_model])
        with pytest.raises(ValueError, match="start"):
            StackedSequential([mnist_model], start=len(mnist_model.layers))
        with pytest.raises(ValueError, match="scalarization"):
            StackedSequential([mnist_model]).output_gradients_batch(
                np.zeros((1, *mnist_model.input_shape)), "median"
            )


class TestFirstDivergence:
    def test_identical_copy_diverges_nowhere(self, mnist_model):
        assert first_divergence(mnist_model, mnist_model.copy()) == len(
            mnist_model.layers
        )

    def test_head_copy_diverges_at_last_dense(self, mnist_model):
        copy = head_copies(mnist_model, 1)[0]
        param_layers = [
            idx for idx, layer in enumerate(mnist_model.layers) if layer.parameters()
        ]
        assert first_divergence(mnist_model, copy) == param_layers[-1]

    def test_first_layer_perturbation_diverges_at_zero(self, mnist_model):
        copy = mnist_model.copy()
        copy.parameter_view().add_scalar(0, 1.0)
        assert first_divergence(mnist_model, copy) == 0


class TestModelAxisBackend:
    def test_registered_and_constructible(self):
        backend = get_backend("model_axis")
        assert isinstance(backend, ModelAxisBackend)
        assert backend.model_axis_capacity == DEFAULT_MAX_MODELS
        assert ModelAxisBackend(max_models=4).model_axis_capacity == 4
        with pytest.raises(ValueError):
            ModelAxisBackend(max_models=0)

    def test_numpy_backend_advertises_no_capacity(self):
        assert NumpyBackend().model_axis_capacity == 0

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    def test_trunk_grouping_bitwise_identical(self, arch, request):
        # mixed divergence depths: an identical copy (broadcast of base
        # logits), head-perturbed copies (deep shared trunk) and SBA copies
        # on arbitrary layers — all must match per-copy engine forwards
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")
        copies = (
            [model.copy()] + head_copies(model, 2) + sba_copies(model, 3)
        )
        fused = ModelAxisBackend().stacked_forward(copies, pool, base=model)
        for m, copy in enumerate(copies):
            assert np.array_equal(fused[m], Engine(copy, cache=False).forward(pool))

    def test_baseless_dispatch_bitwise_identical(self, mnist_model, mnist_pool):
        copies = sba_copies(mnist_model, 3)
        fused = ModelAxisBackend().stacked_forward(copies, mnist_pool)
        for m, copy in enumerate(copies):
            assert np.array_equal(
                fused[m], Engine(copy, cache=False).forward(mnist_pool)
            )

    def test_stacked_packed_masks_match_numpy(self, mnist_model, mnist_pool):
        copies = sba_copies(mnist_model, 2)
        fused = ModelAxisBackend().stacked_packed_masks(
            copies, mnist_pool[:4], "sum", 1e-4
        )
        loop = NumpyBackend().stacked_packed_masks(copies, mnist_pool[:4], "sum", 1e-4)
        assert np.array_equal(fused, loop)


class TestEngineStackedForward:
    def test_engine_dispatch_bitwise_identical(self, mnist_model, mnist_pool):
        copies = sba_copies(mnist_model, 5)
        loop = Engine(mnist_model, cache=False).stacked_forward(copies, mnist_pool)
        fused = Engine(
            mnist_model, backend=ModelAxisBackend(), cache=False
        ).stacked_forward(copies, mnist_pool)
        assert np.array_equal(loop, fused)

    def test_capacity_grouping_preserves_results(self, mnist_model, mnist_pool):
        # more copies than max_models: the engine splits into fused groups
        copies = sba_copies(mnist_model, 7)
        whole = Engine(mnist_model, cache=False).stacked_forward(copies, mnist_pool)
        grouped = Engine(
            mnist_model, backend=ModelAxisBackend(max_models=3), cache=False
        ).stacked_forward(copies, mnist_pool)
        assert np.array_equal(whole, grouped)

    def test_memoized_on_digest_tuple(self, mnist_model, mnist_pool):
        engine = Engine(mnist_model, backend=ModelAxisBackend())
        copies = sba_copies(mnist_model, 3)
        first = engine.stacked_forward(copies, mnist_pool)
        hits_before = engine.stats.hits
        again = engine.stacked_forward(copies, mnist_pool)
        assert engine.stats.hits == hits_before + 1
        assert np.array_equal(first, again)
        # perturbing any copy changes its digest — the memo must miss
        copies[1].parameter_view().add_scalar(0, 1.0)
        recomputed = engine.stacked_forward(copies, mnist_pool)
        assert engine.stats.hits == hits_before + 1
        assert not np.array_equal(first[1], recomputed[1])

    def test_validation_errors(self, mnist_model, cifar_model, mnist_pool):
        engine = Engine(mnist_model)
        with pytest.raises(ValueError, match="at least one model"):
            engine.stacked_forward([], mnist_pool)
        with pytest.raises(ValueError, match="input shape"):
            engine.stacked_forward([cifar_model], mnist_pool)


class TestConsumerEquivalence:
    """Detection tables and greedy selections: byte-identical across backends."""

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    def test_detection_table_identical(self, arch, request):
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")
        packages = {
            "training_set": IPVendor(model).build_package(pool[:4]),
            "random": IPVendor(model).build_package(pool[4:8]),
        }
        factories = default_attack_factories(pool[:4])
        config = DetectionConfig(
            trials=7, test_budgets=(2, 4), attacks=("sba", "random"), seed=0
        )
        rows_np = DetectionExperiment(
            model, packages, factories, config, backend="numpy"
        ).run().as_rows()
        rows_ma = DetectionExperiment(
            model, packages, factories, config, backend=ModelAxisBackend(max_models=4)
        ).run().as_rows()
        assert rows_np == rows_ma

    def test_greedy_selection_identical(self, mnist_model, mnist_pool):
        dataset = Dataset(
            images=mnist_pool, labels=np.zeros(len(mnist_pool), dtype=np.int64)
        )
        numpy_result = TrainingSetSelector(
            mnist_model, dataset, rng=0, engine=Engine(mnist_model, backend="numpy")
        ).generate(num_tests=6)
        fused_result = TrainingSetSelector(
            mnist_model,
            dataset,
            rng=0,
            engine=Engine(mnist_model, backend="model_axis"),
        ).generate(num_tests=6)
        np.testing.assert_array_equal(
            numpy_result.dataset_indices, fused_result.dataset_indices
        )
        assert numpy_result.gains == fused_result.gains
        assert numpy_result.coverage_history == fused_result.coverage_history
