"""Tests for the model zoo and the trainer."""

import numpy as np
import pytest

from repro.data.synth_digits import generate_digits
from repro.models.training import Trainer, TrainingHistory, train_model
from repro.models.zoo import (
    build_model,
    cifar_cnn,
    cifar_cnn_scaled,
    mnist_cnn,
    mnist_cnn_scaled,
    small_cnn,
    small_mlp,
)
from repro.nn.layers import Conv2D, Dense
from repro.utils.config import TrainingConfig


class TestZoo:
    def test_mnist_cnn_matches_table1_topology(self):
        model = mnist_cnn(width_multiplier=1.0, build=False)
        conv_layers = [l for l in model.layers if isinstance(l, Conv2D)]
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert [c.filters for c in conv_layers] == [32, 32, 64, 64]
        assert [d.units for d in dense_layers] == [128, 10]
        assert all(c.activation.name == "tanh" for c in conv_layers)

    def test_cifar_cnn_matches_table1_topology(self):
        model = cifar_cnn(width_multiplier=1.0, build=False)
        conv_layers = [l for l in model.layers if isinstance(l, Conv2D)]
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert [c.filters for c in conv_layers] == [64, 64, 128, 128]
        assert [d.units for d in dense_layers] == [512, 10]
        assert all(c.activation.name == "relu" for c in conv_layers)

    def test_width_multiplier_scales_parameters(self):
        small = mnist_cnn(width_multiplier=0.125)
        smaller = mnist_cnn(width_multiplier=0.0625)
        assert small.num_parameters() > smaller.num_parameters()

    def test_scaled_builders_produce_working_models(self):
        m = mnist_cnn_scaled(rng=0)
        c = cifar_cnn_scaled(rng=0)
        assert m.forward(np.zeros((1, 1, 28, 28))).shape == (1, 10)
        assert c.forward(np.zeros((1, 3, 32, 32))).shape == (1, 10)

    def test_small_builders(self):
        cnn = small_cnn(rng=0)
        mlp = small_mlp(rng=0)
        assert cnn.num_classes == 10
        assert mlp.num_classes == 4

    def test_build_model_by_name(self):
        assert build_model("small_mlp", rng=0).name == "small_mlp"
        with pytest.raises(ValueError):
            build_model("resnet50")

    def test_invalid_width_multiplier(self):
        with pytest.raises(ValueError):
            mnist_cnn(width_multiplier=0.0)
        with pytest.raises(ValueError):
            cifar_cnn(width_multiplier=-1.0)

    def test_small_mlp_depth_validation(self):
        with pytest.raises(ValueError):
            small_mlp(depth=0)


class TestTrainer:
    def test_training_reduces_loss_and_learns(self):
        data = generate_digits(80, rng=0, size=12)
        model = small_cnn(
            channels=4, dense_units=16, input_shape=(1, 12, 12), num_classes=10, rng=0
        )
        config = TrainingConfig(epochs=10, batch_size=16, learning_rate=3e-3, seed=0)
        history = Trainer(config).fit(model, data, data)
        assert history.epochs_run == 10
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.final_test_accuracy > 0.5

    def test_early_stopping(self):
        data = generate_digits(60, rng=1, size=12)
        model = small_cnn(
            channels=4, dense_units=16, input_shape=(1, 12, 12), num_classes=10, rng=1
        )
        config = TrainingConfig(
            epochs=50, batch_size=16, learning_rate=3e-3, early_stop_accuracy=0.6, seed=1
        )
        history = Trainer(config).fit(model, data, data)
        assert history.epochs_run < 50

    def test_empty_dataset_raises(self):
        model = small_mlp(rng=0)

        class Empty:
            images = np.zeros((0, 16))
            labels = np.zeros((0,), dtype=int)

            def __len__(self):
                return 0

        with pytest.raises(ValueError):
            Trainer().fit(model, Empty())

    def test_history_to_dict_and_final_accuracy_guard(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.final_test_accuracy
        history.train_loss.append(1.0)
        history.train_accuracy.append(0.5)
        history.test_accuracy.append(0.5)
        d = history.to_dict()
        assert set(d) == {"train_loss", "train_accuracy", "test_accuracy"}

    def test_train_model_wrapper(self):
        data = generate_digits(40, rng=2, size=12)
        model = small_cnn(
            channels=3, dense_units=8, input_shape=(1, 12, 12), num_classes=10, rng=2
        )
        history = train_model(
            model, data, config=TrainingConfig(epochs=2, batch_size=16, learning_rate=2e-3)
        )
        assert history.epochs_run == 2

    def test_evaluate(self, trained_cnn, digit_dataset):
        acc = Trainer().evaluate(trained_cnn, digit_dataset)
        assert 0.0 <= acc <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs").validate()
