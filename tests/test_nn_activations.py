"""Tests for activation functions: values, gradients and registry behaviour."""

import numpy as np
import pytest

from repro.nn.activations import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
    is_exact_zero_gradient,
)


def _numeric_grad(act, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(act(x) * grad_out) wrt x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = np.sum(act.forward(x) * grad_out)
        x[idx] = orig - eps
        minus = np.sum(act.forward(x) * grad_out)
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.mark.parametrize(
    "activation",
    [Identity(), ReLU(), LeakyReLU(0.1), Tanh(), Sigmoid(), Softmax()],
    ids=lambda a: a.name,
)
def test_backward_matches_numeric_gradient(activation):
    rng = np.random.default_rng(0)
    x = rng.normal(0.0, 1.5, size=(4, 5))
    # keep ReLU away from the non-differentiable kink
    x[np.abs(x) < 1e-3] = 0.5
    grad_out = rng.normal(size=(4, 5))
    y = activation.forward(x)
    analytic = activation.backward(x, y, grad_out)
    numeric = _numeric_grad(activation, x.copy(), grad_out)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestReLU:
    def test_forward_clamps_negatives(self):
        x = np.array([-2.0, -0.1, 0.0, 0.1, 3.0])
        np.testing.assert_allclose(ReLU().forward(x), [0, 0, 0, 0.1, 3.0])

    def test_gradient_exactly_zero_in_inactive_region(self):
        relu = ReLU()
        x = np.array([-5.0, -1e-9, 2.0])
        y = relu.forward(x)
        grad = relu.backward(x, y, np.ones_like(x))
        assert grad[0] == 0.0
        assert grad[1] == 0.0
        assert grad[2] == 1.0


class TestTanhSigmoid:
    def test_tanh_saturation_gradient_is_small_but_nonzero(self):
        tanh = Tanh()
        x = np.array([20.0])
        y = tanh.forward(x)
        grad = tanh.backward(x, y, np.ones(1))
        assert grad[0] != 0.0 or y[0] == 1.0  # float saturation may hit exactly 1
        assert abs(grad[0]) < 1e-6

    def test_sigmoid_output_range(self):
        x = np.linspace(-50, 50, 101)
        y = Sigmoid().forward(x)
        assert np.all(y >= 0.0)
        assert np.all(y <= 1.0)
        assert y[0] < 1e-10
        assert y[-1] > 1 - 1e-10

    def test_sigmoid_is_numerically_stable_for_large_negatives(self):
        y = Sigmoid().forward(np.array([-1000.0]))
        assert np.isfinite(y).all()


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 4)) * 10
        y = Softmax().forward(x)
        np.testing.assert_allclose(y.sum(axis=1), np.ones(6))

    def test_invariant_to_constant_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        sm = Softmax()
        np.testing.assert_allclose(sm.forward(x), sm.forward(x + 100.0))


class TestRegistry:
    def test_get_activation_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("tanh"), Tanh)
        assert isinstance(get_activation(None), Identity)

    def test_get_activation_passes_instances_through(self):
        act = LeakyReLU(0.2)
        assert get_activation(act) is act

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("swishish")

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_exact_zero_gradient_classification(self):
        assert is_exact_zero_gradient("relu")
        assert not is_exact_zero_gradient("tanh")
        assert not is_exact_zero_gradient("sigmoid")
