"""Tests for layers: shapes, forward values, and numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    ActivationLayer,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    col2im,
    im2col,
)
from repro.nn.tensor import Parameter


def _rng():
    return np.random.default_rng(42)


def _check_layer_gradients(layer, x, rtol=1e-5, atol=1e-7):
    """Numeric check of input and parameter gradients of sum(layer(x))."""
    y = layer.forward(x, training=False)
    grad_out = np.ones_like(y)
    layer.zero_grad()
    grad_in = layer.backward(grad_out)

    eps = 1e-6

    # input gradient on a handful of entries
    rng = _rng()
    flat_idx = rng.choice(x.size, size=min(12, x.size), replace=False)
    for fi in flat_idx:
        idx = np.unravel_index(fi, x.shape)
        orig = x[idx]
        x[idx] = orig + eps
        plus = layer.forward(x, training=False).sum()
        x[idx] = orig - eps
        minus = layer.forward(x, training=False).sum()
        x[idx] = orig
        numeric = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad_in[idx], numeric, rtol=rtol, atol=atol)

    # parameter gradients on a handful of entries per parameter
    for param in layer.parameters():
        analytic = param.grad.copy()
        flat_idx = rng.choice(param.size, size=min(10, param.size), replace=False)
        for fi in flat_idx:
            idx = np.unravel_index(fi, param.value.shape)
            orig = param.value[idx]
            param.value[idx] = orig + eps
            plus = layer.forward(x, training=False).sum()
            param.value[idx] = orig - eps
            minus = layer.forward(x, training=False).sum()
            param.value[idx] = orig
            numeric = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(analytic[idx], numeric, rtol=rtol, atol=atol)


class TestIm2Col:
    def test_round_trip_shapes(self):
        x = _rng().random((2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 36)
        assert (oh, ow) == (6, 6)

    def test_col2im_accumulates_overlaps(self):
        x = np.ones((1, 1, 4, 4))
        cols, _, _ = im2col(x, 3, 3, stride=1, padding=0)
        back = col2im(np.ones_like(cols), (1, 1, 4, 4), 3, 3, stride=1, padding=0)
        # centre pixels belong to 4 overlapping 3x3 patches
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0

    def test_invalid_geometry_raises(self):
        x = np.ones((1, 1, 2, 2))
        with pytest.raises(ValueError):
            im2col(x, 5, 5, stride=1, padding=0)


class TestDense:
    def test_build_and_output_shape(self):
        layer = Dense(7, activation="relu")
        layer.build((5,), _rng())
        assert layer.weight.shape == (5, 7)
        assert layer.bias.shape == (7,)
        assert layer.output_shape((5,)) == (7,)

    def test_requires_flat_input(self):
        layer = Dense(3)
        with pytest.raises(ValueError, match="Flatten"):
            layer.build((2, 4, 4), _rng())

    def test_forward_linear_values(self):
        layer = Dense(2, activation=None, use_bias=True)
        layer.build((3,), _rng())
        layer.weight.assign(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        layer.bias.assign(np.array([0.5, -0.5]))
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[4.5, 4.5]])

    @pytest.mark.parametrize("activation", [None, "relu", "tanh", "sigmoid"])
    def test_gradients(self, activation):
        layer = Dense(4, activation=activation)
        layer.build((6,), _rng())
        x = _rng().normal(size=(3, 6))
        _check_layer_gradients(layer, x)

    def test_no_bias_option(self):
        layer = Dense(4, use_bias=False)
        layer.build((3,), _rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_nonpositive_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_forward_before_build_raises(self):
        with pytest.raises(RuntimeError):
            Dense(3).forward(np.zeros((1, 3)))


class TestConv2D:
    def test_output_shapes_same_and_valid(self):
        conv_same = Conv2D(8, 3, padding="same")
        conv_valid = Conv2D(8, 3, padding="valid")
        assert conv_same.output_shape((3, 10, 10)) == (8, 10, 10)
        assert conv_valid.output_shape((3, 10, 10)) == (8, 8, 8)

    def test_stride_two_output_shape(self):
        conv = Conv2D(4, 3, stride=2, padding=0)
        assert conv.output_shape((1, 9, 9)) == (4, 4, 4)

    def test_same_padding_requires_stride_one(self):
        conv = Conv2D(4, 3, stride=2, padding="same")
        with pytest.raises(ValueError, match="stride 1"):
            conv.output_shape((1, 8, 8))

    def test_known_convolution_value(self):
        conv = Conv2D(1, 3, padding="valid", activation=None, use_bias=True)
        conv.build((1, 3, 3), _rng())
        conv.weight.assign(np.ones((1, 1, 3, 3)))
        conv.bias.assign(np.array([1.0]))
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv.forward(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx(np.arange(9).sum() + 1.0)

    @pytest.mark.parametrize("activation", [None, "relu", "tanh"])
    @pytest.mark.parametrize("padding", ["same", "valid"])
    def test_gradients(self, activation, padding):
        conv = Conv2D(3, 3, padding=padding, activation=activation)
        conv.build((2, 6, 6), _rng())
        x = _rng().normal(size=(2, 2, 6, 6))
        _check_layer_gradients(conv, x)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            Conv2D(0)
        with pytest.raises(ValueError):
            Conv2D(4, stride=0)
        with pytest.raises(ValueError):
            Conv2D(4, padding="weird").output_shape((1, 8, 8))


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = pool.forward(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 4.0

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        grad = pool.backward(np.array([[[[5.0]]]]))
        expected = np.zeros_like(x)
        expected[0, 0, 1, 1] = 5.0
        np.testing.assert_allclose(grad, expected)

    def test_avgpool_values_and_backward(self):
        pool = AvgPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = pool.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(2.5)
        grad = pool.backward(np.array([[[[4.0]]]]))
        np.testing.assert_allclose(grad, np.ones_like(x))

    def test_maxpool_gradients_numeric(self):
        pool = MaxPool2D(2)
        x = _rng().normal(size=(2, 3, 6, 6))
        _check_layer_gradients(pool, x)

    def test_output_shapes(self):
        assert MaxPool2D(2).output_shape((4, 8, 8)) == (4, 4, 4)
        assert AvgPool2D(2).output_shape((4, 8, 8)) == (4, 4, 4)


class TestFlattenDropoutActivationLayer:
    def test_flatten_round_trip(self):
        flat = Flatten()
        x = _rng().random((2, 3, 4, 4))
        y = flat.forward(x)
        assert y.shape == (2, 48)
        back = flat.backward(np.ones_like(y))
        assert back.shape == x.shape

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)

    def test_dropout_identity_at_inference(self):
        drop = Dropout(0.5, seed=0)
        x = _rng().random((4, 10))
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_dropout_masks_during_training(self):
        drop = Dropout(0.5, seed=0)
        x = np.ones((10, 100))
        y = drop.forward(x, training=True)
        zero_fraction = np.mean(y == 0.0)
        assert 0.3 < zero_fraction < 0.7
        # surviving activations are scaled up
        assert np.allclose(y[y != 0], 2.0)

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activation_layer_gradients(self):
        layer = ActivationLayer("tanh")
        x = _rng().normal(size=(3, 7))
        _check_layer_gradients(layer, x)
