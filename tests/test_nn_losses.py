"""Tests for loss functions: values, gradients and input validation."""

import numpy as np
import pytest

from repro.nn.losses import (
    MeanSquaredError,
    NegativeLogit,
    SoftmaxCrossEntropy,
    get_loss,
    one_hot,
)


def _numeric_grad(loss, logits, targets, eps=1e-6):
    grad = np.zeros_like(logits)
    it = np.nditer(logits, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = logits[idx]
        logits[idx] = orig + eps
        plus, _ = loss.value_and_grad(logits, targets)
        logits[idx] = orig - eps
        minus, _ = loss.value_and_grad(logits, targets)
        logits[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestOneHot:
    def test_basic_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        expected = np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        np.testing.assert_array_equal(out, expected)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2)), 3)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_gives_small_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = SoftmaxCrossEntropy().value_and_grad(logits, np.array([0]))
        assert loss < 1e-6

    def test_uniform_logits_give_log_k(self):
        logits = np.zeros((4, 5))
        loss, _ = SoftmaxCrossEntropy().value_and_grad(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(5), rel=1e-6)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(0, 4, size=5)
        loss = SoftmaxCrossEntropy()
        _, analytic = loss.value_and_grad(logits, targets)
        numeric = _numeric_grad(loss, logits.copy(), targets)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_accepts_one_hot_targets(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        labels = np.array([1, 0])
        l1, g1 = SoftmaxCrossEntropy().value_and_grad(logits, labels)
        l2, g2 = SoftmaxCrossEntropy().value_and_grad(logits, one_hot(labels, 2))
        assert l1 == pytest.approx(l2)
        np.testing.assert_allclose(g1, g2)

    def test_stable_for_extreme_logits(self):
        logits = np.array([[1e4, -1e4]])
        loss, grad = SoftmaxCrossEntropy().value_and_grad(logits, np.array([1]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_rejects_non_2d_logits(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().value_and_grad(np.zeros(3), np.array([0]))


class TestMeanSquaredError:
    def test_zero_for_identical_inputs(self):
        x = np.random.default_rng(0).random((3, 4))
        loss, grad = MeanSquaredError().value_and_grad(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(5)
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss = MeanSquaredError()
        _, analytic = loss.value_and_grad(pred, target)
        numeric = _numeric_grad(loss, pred.copy(), target)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value_and_grad(np.zeros((2, 2)), np.zeros((2, 3)))


class TestNegativeLogit:
    def test_gradient_is_minus_one_hot_over_n(self):
        logits = np.zeros((2, 3))
        _, grad = NegativeLogit().value_and_grad(logits, np.array([0, 2]))
        expected = -one_hot(np.array([0, 2]), 3) / 2
        np.testing.assert_allclose(grad, expected)

    def test_value_is_mean_negative_target_logit(self):
        logits = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        value, _ = NegativeLogit().value_and_grad(logits, np.array([2, 0]))
        assert value == pytest.approx(-(3.0 + 4.0) / 2)


class TestRegistry:
    def test_get_loss_by_name(self):
        assert isinstance(get_loss("cross_entropy"), SoftmaxCrossEntropy)
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("negative_logit"), NegativeLogit)

    def test_get_loss_passes_instances_through(self):
        loss = MeanSquaredError()
        assert get_loss(loss) is loss

    def test_unknown_loss_raises(self):
        with pytest.raises(ValueError):
            get_loss("hinge")
