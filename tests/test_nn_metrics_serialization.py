"""Tests for metrics and model serialisation/digests."""

import numpy as np
import pytest

from repro.models.zoo import small_mlp
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.serialization import (
    load_metadata,
    load_model_into,
    load_parameters,
    parameter_digest,
    save_model,
)


class TestMetrics:
    def test_accuracy_with_class_indices(self):
        assert accuracy(np.array([0, 1, 2, 2]), np.array([0, 1, 1, 2])) == 0.75

    def test_accuracy_with_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_top_k_accuracy(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.6, 0.3, 0.1]])
        labels = np.array([2, 1])
        assert top_k_accuracy(logits, labels, k=1) == 0.0
        assert top_k_accuracy(logits, labels, k=2) == 1.0

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2), k=4)

    def test_confusion_matrix_counts(self):
        mat = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert mat[0, 0] == 1
        assert mat[1, 1] == 1
        assert mat[2, 1] == 1
        assert mat[2, 2] == 1
        assert mat.sum() == 4

    def test_per_class_accuracy_handles_missing_classes(self):
        result = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), 3)
        assert result[0] == 1.0
        assert np.isnan(result[1])


class TestSerialization:
    def test_digest_changes_with_parameters(self):
        model = small_mlp(rng=0)
        before = parameter_digest(model)
        model.parameter_view().add_scalar(0, 0.5)
        assert parameter_digest(model) != before

    def test_digest_is_deterministic(self):
        model = small_mlp(rng=0)
        assert parameter_digest(model) == parameter_digest(model)

    def test_save_and_load_round_trip(self, tmp_path):
        model = small_mlp(rng=1)
        path = save_model(model, tmp_path / "model.npz")
        meta = load_metadata(path)
        assert meta["digest"] == parameter_digest(model)

        other = small_mlp(rng=2)
        load_model_into(other, path)
        np.testing.assert_allclose(
            other.parameter_view().flat_values(), model.parameter_view().flat_values()
        )

    def test_load_detects_tampered_file(self, tmp_path):
        model = small_mlp(rng=3)
        path = save_model(model, tmp_path / "model.npz")
        params = load_parameters(path)
        # tamper with one tensor and re-save, keeping the stale metadata
        name = sorted(params)[0]
        params[name] = params[name] + 1.0
        meta_blob = np.load(path)["__meta__"]
        np.savez(path, __meta__=meta_blob, **params)
        other = small_mlp(rng=3)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_model_into(other, path)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_parameters(tmp_path / "missing.npz")
