"""Tests for the Sequential model: building, gradients, state and queries."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.models.zoo import small_cnn, small_mlp


def _tiny_cnn(activation="relu", rng=0):
    return small_cnn(
        channels=3,
        dense_units=8,
        input_shape=(1, 8, 8),
        num_classes=4,
        activation=activation,
        rng=rng,
    )


class TestConstruction:
    def test_build_sets_shapes(self):
        model = _tiny_cnn()
        assert model.built
        assert model.input_shape == (1, 8, 8)
        assert model.output_shape == (4,)
        assert model.num_classes == 4

    def test_cannot_add_after_build(self):
        model = _tiny_cnn()
        with pytest.raises(RuntimeError):
            model.add(Dense(3))

    def test_empty_model_build_raises(self):
        with pytest.raises(ValueError):
            Sequential([]).build((4,))

    def test_forward_before_build_raises(self):
        model = Sequential([Dense(3)])
        with pytest.raises(RuntimeError):
            model.forward(np.zeros((1, 4)))

    def test_wrong_input_shape_raises(self):
        model = _tiny_cnn()
        with pytest.raises(ValueError, match="does not match"):
            model.forward(np.zeros((2, 1, 9, 9)))

    def test_num_parameters_counts_all(self):
        model = small_mlp(input_features=5, hidden_units=7, num_classes=3, depth=1, rng=0)
        # (5*7 + 7) + (7*3 + 3)
        assert model.num_parameters() == 5 * 7 + 7 + 7 * 3 + 3

    def test_summary_contains_layers_and_total(self):
        model = _tiny_cnn()
        text = model.summary()
        assert "conv1" in text
        assert "Total parameters" in text


class TestForwardBackward:
    def test_full_model_gradient_check(self):
        model = _tiny_cnn(activation="tanh", rng=2)
        rng = np.random.default_rng(0)
        x = rng.random((2, 1, 8, 8))
        y = np.array([0, 3])
        loss_fn = SoftmaxCrossEntropy()

        model.zero_grad()
        logits = model.forward(x, training=True)
        _, grad = loss_fn.value_and_grad(logits, y)
        model.backward(grad)
        analytic = model.parameter_view().flat_grads()

        eps = 1e-6
        view = model.parameter_view()
        idx = rng.choice(view.total_size, size=25, replace=False)
        for i in idx:
            orig = view.get_scalar(int(i))
            view.set_scalar(int(i), orig + eps)
            plus = loss_fn.value_and_grad(model.forward(x), y)[0]
            view.set_scalar(int(i), orig - eps)
            minus = loss_fn.value_and_grad(model.forward(x), y)[0]
            view.set_scalar(int(i), orig)
            numeric = (plus - minus) / (2 * eps)
            assert analytic[i] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_predict_matches_forward_in_chunks(self):
        model = _tiny_cnn()
        x = np.random.default_rng(1).random((7, 1, 8, 8))
        np.testing.assert_allclose(model.predict(x, batch_size=3), model.forward(x))

    def test_predict_classes_and_proba(self):
        model = _tiny_cnn()
        x = np.random.default_rng(1).random((5, 1, 8, 8))
        proba = model.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(5))
        assert np.array_equal(model.predict_classes(x), np.argmax(proba, axis=1))

    def test_forward_collect_returns_every_layer_output(self):
        model = _tiny_cnn()
        x = np.random.default_rng(2).random((1, 1, 8, 8))
        outputs = model.forward_collect(x)
        assert len(outputs) == len(model.layers)
        np.testing.assert_allclose(outputs[-1], model.forward(x))


class TestGradientQueries:
    def test_output_gradients_shape_and_reset(self):
        model = _tiny_cnn()
        x = np.random.default_rng(3).random((1, 8, 8))
        grads = model.output_gradients(x)
        assert grads.shape == (model.num_parameters(),)
        # the query must not leave stale gradients behind
        assert np.all(model.parameter_view().flat_grads() == 0.0)

    def test_output_gradients_accepts_batched_single_sample(self):
        model = _tiny_cnn()
        x = np.random.default_rng(3).random((1, 1, 8, 8))
        grads = model.output_gradients(x)
        assert grads.shape == (model.num_parameters(),)

    def test_output_gradients_rejects_batches(self):
        model = _tiny_cnn()
        with pytest.raises(ValueError):
            model.output_gradients(np.zeros((2, 1, 8, 8)))

    def test_output_gradients_rejects_unknown_scalarization(self):
        model = _tiny_cnn()
        with pytest.raises(ValueError):
            model.output_gradients(np.zeros((1, 8, 8)), scalarization="median")

    def test_scalarizations_differ(self):
        model = _tiny_cnn(rng=5)
        x = np.random.default_rng(4).random((1, 8, 8))
        g_sum = model.output_gradients(x, "sum")
        g_max = model.output_gradients(x, "max")
        assert not np.allclose(g_sum, g_max)

    def test_input_gradient_shape_and_descent_direction(self):
        model = _tiny_cnn(rng=6)
        x = np.random.default_rng(5).random((2, 1, 8, 8))
        y = np.array([1, 2])
        loss_before, grad = model.input_gradient(x, y)
        stepped = x - 0.05 * grad
        loss_after, _ = model.input_gradient(stepped, y)
        assert grad.shape == x.shape
        assert loss_after < loss_before


class TestState:
    def test_state_dict_round_trip(self):
        model = _tiny_cnn(rng=7)
        state = model.state_dict()
        other = _tiny_cnn(rng=8)
        assert not np.allclose(
            other.parameter_view().flat_values(), model.parameter_view().flat_values()
        )
        other.load_state_dict(state)
        np.testing.assert_allclose(
            other.parameter_view().flat_values(), model.parameter_view().flat_values()
        )

    def test_load_state_dict_rejects_mismatched_keys(self):
        model = _tiny_cnn()
        state = model.state_dict()
        del state["fc1/weight"]
        with pytest.raises(ValueError, match="mismatch"):
            model.load_state_dict(state)

    def test_copy_is_deep(self):
        model = _tiny_cnn(rng=9)
        clone = model.copy()
        clone.parameter_view().set_scalar(0, 123.0)
        assert model.parameter_view().get_scalar(0) != 123.0
        x = np.random.default_rng(0).random((1, 1, 8, 8))
        # clone still computes (structure intact)
        assert clone.forward(x).shape == (1, 4)
