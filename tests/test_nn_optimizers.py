"""Tests for optimisers and LR schedules."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, Momentum, StepDecay, get_optimizer
from repro.nn.tensor import Parameter


def _quadratic_params():
    """A single parameter whose optimum is at zero (loss = 0.5 * ||p||^2)."""
    return [Parameter(np.array([4.0, -3.0]), name="p")]


def _step_quadratic(optimizer, params, steps):
    for _ in range(steps):
        for p in params:
            p.zero_grad()
            p.grad += p.value  # gradient of 0.5 * ||p||^2
        optimizer.step(params)
    return params[0].value


class TestSGD:
    def test_single_step_update_rule(self):
        params = [Parameter(np.array([1.0]), name="p")]
        params[0].grad += np.array([2.0])
        SGD(learning_rate=0.1).step(params)
        np.testing.assert_allclose(params[0].value, [0.8])

    def test_converges_on_quadratic(self):
        value = _step_quadratic(SGD(learning_rate=0.2), _quadratic_params(), 60)
        assert np.all(np.abs(value) < 1e-4)

    def test_skips_frozen_parameters(self):
        frozen = Parameter(np.array([1.0]), trainable=False)
        frozen.grad += 5.0
        SGD(learning_rate=0.1).step([frozen])
        assert frozen.value[0] == 1.0

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.array([1.0]))
        SGD(learning_rate=0.1, weight_decay=1.0).step([p])
        assert p.value[0] < 1.0

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, weight_decay=-1.0)


class TestMomentum:
    def test_converges_on_quadratic(self):
        value = _step_quadratic(
            Momentum(learning_rate=0.05, momentum=0.9), _quadratic_params(), 120
        )
        assert np.all(np.abs(value) < 1e-3)

    def test_velocity_reset(self):
        opt = Momentum(learning_rate=0.1)
        params = _quadratic_params()
        _step_quadratic(opt, params, 3)
        opt.reset()
        assert opt.iterations == 0
        assert not opt._velocity

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        value = _step_quadratic(Adam(learning_rate=0.3), _quadratic_params(), 200)
        assert np.all(np.abs(value) < 1e-2)

    def test_first_step_size_close_to_learning_rate(self):
        p = Parameter(np.array([1.0]))
        p.grad += np.array([10.0])
        Adam(learning_rate=0.1).step([p])
        # bias correction makes the first step approximately lr * sign(grad)
        assert p.value[0] == pytest.approx(0.9, abs=1e-3)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)


class TestStepDecay:
    def test_schedule_values(self):
        sched = StepDecay(initial_lr=1.0, step=10, gamma=0.5)
        assert sched.lr_at(0) == 1.0
        assert sched.lr_at(9) == 1.0
        assert sched.lr_at(10) == 0.5
        assert sched.lr_at(20) == 0.25

    def test_apply_updates_optimizer(self):
        opt = SGD(learning_rate=1.0)
        StepDecay(initial_lr=1.0, step=5, gamma=0.1).apply(opt, epoch=5)
        assert opt.learning_rate == pytest.approx(0.1)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            StepDecay(0.0)
        with pytest.raises(ValueError):
            StepDecay(1.0, step=0)
        with pytest.raises(ValueError):
            StepDecay(1.0, gamma=0.0)
        with pytest.raises(ValueError):
            StepDecay(1.0).lr_at(-1)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("momentum", Momentum), ("adam", Adam)])
    def test_builds_by_name(self, name, cls):
        assert isinstance(get_optimizer(name, 0.01), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")
