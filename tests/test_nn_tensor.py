"""Tests for Parameter and ParameterView (flat indexing, assignment, grads)."""

import numpy as np
import pytest

from repro.nn.tensor import Parameter, ParameterView


class TestParameter:
    def test_value_is_float64_copy(self):
        raw = np.array([[1, 2], [3, 4]], dtype=np.int32)
        p = Parameter(raw, name="w")
        assert p.value.dtype == np.float64
        assert p.shape == (2, 2)
        assert p.size == 4

    def test_grad_starts_at_zero_and_zero_grad_resets(self):
        p = Parameter(np.ones((3,)))
        assert np.all(p.grad == 0.0)
        p.grad += 2.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_assign_checks_shape(self):
        p = Parameter(np.zeros((2, 3)), name="w")
        with pytest.raises(ValueError, match="cannot assign"):
            p.assign(np.zeros((3, 2)))
        p.assign(np.ones((2, 3)))
        assert np.all(p.value == 1.0)

    def test_assign_copies_input(self):
        p = Parameter(np.zeros((2,)))
        src = np.array([1.0, 2.0])
        p.assign(src)
        src[0] = 99.0
        assert p.value[0] == 1.0

    def test_add_in_place(self):
        p = Parameter(np.ones((2,)))
        p.add_(np.array([0.5, -0.5]))
        np.testing.assert_allclose(p.value, [1.5, 0.5])

    def test_add_shape_mismatch_raises(self):
        p = Parameter(np.ones((2,)))
        with pytest.raises(ValueError, match="delta shape"):
            p.add_(np.ones((3,)))

    def test_copy_is_independent(self):
        p = Parameter(np.ones((2,)), name="orig")
        q = p.copy()
        q.value[0] = 5.0
        q.grad[1] = 3.0
        assert p.value[0] == 1.0
        assert p.grad[1] == 0.0
        assert q.name == "orig"


class TestParameterView:
    def _make_view(self):
        a = Parameter(np.arange(6, dtype=float).reshape(2, 3), name="a")
        b = Parameter(np.arange(6, 10, dtype=float), name="b")
        return a, b, ParameterView([a, b])

    def test_requires_at_least_one_parameter(self):
        with pytest.raises(ValueError):
            ParameterView([])

    def test_total_size_and_len(self):
        a, b, view = self._make_view()
        assert view.total_size == 10
        assert len(view) == 2
        assert list(view) == [a, b]

    def test_flat_values_concatenates_in_order(self):
        _, _, view = self._make_view()
        np.testing.assert_allclose(view.flat_values(), np.arange(10, dtype=float))

    def test_set_flat_values_round_trip(self):
        a, b, view = self._make_view()
        new = np.linspace(0, 1, 10)
        view.set_flat_values(new)
        np.testing.assert_allclose(view.flat_values(), new)
        np.testing.assert_allclose(a.value, new[:6].reshape(2, 3))
        np.testing.assert_allclose(b.value, new[6:])

    def test_set_flat_values_wrong_size_raises(self):
        _, _, view = self._make_view()
        with pytest.raises(ValueError, match="entries"):
            view.set_flat_values(np.zeros(9))

    def test_locate_maps_flat_index_to_tensor(self):
        _, _, view = self._make_view()
        assert view.locate(0) == (0, (0, 0))
        assert view.locate(5) == (0, (1, 2))
        assert view.locate(6) == (1, (0,))
        assert view.locate(9) == (1, (3,))

    def test_locate_out_of_range(self):
        _, _, view = self._make_view()
        with pytest.raises(IndexError):
            view.locate(10)
        with pytest.raises(IndexError):
            view.locate(-1)

    def test_scalar_get_set_add(self):
        a, b, view = self._make_view()
        assert view.get_scalar(7) == b.value[1]
        view.set_scalar(7, 42.0)
        assert b.value[1] == 42.0
        view.add_scalar(0, 1.5)
        assert a.value[0, 0] == 1.5

    def test_flat_grads_reflects_parameter_grads(self):
        a, b, view = self._make_view()
        a.grad[:] = 1.0
        b.grad[:] = 2.0
        flat = view.flat_grads()
        assert np.all(flat[:6] == 1.0)
        assert np.all(flat[6:] == 2.0)

    def test_tensor_slices(self):
        _, _, view = self._make_view()
        assert view.tensor_slices() == [("a", 0, 6), ("b", 6, 10)]
