"""Tests for repro.online: transports, the sequential verifier, package v3,
coalescer fairness, the /v1/query endpoint and the verify CLI.

pytest-asyncio is not a dependency — async tests run their event loop via
``asyncio.run`` inside plain sync test functions (the test_serve idiom).
"""

from __future__ import annotations

import asyncio
import math
from pathlib import Path

import numpy as np
import pytest

from repro.online import (
    CallableTransport,
    HttpTransport,
    OnlineVerifier,
    QueryLedger,
    RemoteModel,
    TransportError,
    resolve_transport,
    verify_online,
)
from repro.faults import FaultPolicy
from repro.registry import registry
from repro.testgen import TrainingSetSelector
from repro.validation import (
    IPVendor,
    ValidationPackage,
    clean_floor,
    decide_from_mismatches,
    entropy_order,
    query_order,
    validate_ip,
)
from repro.validation.package import FORMAT_VERSION
from repro.validation.sequential import (
    DEFAULT_CLEAN_FRACTION,
    VERDICT_CLEAN,
    VERDICT_TAMPERED,
    llr_increments,
    sprt_thresholds,
)


@pytest.fixture(scope="module")
def vendor(trained_cnn, digit_dataset):
    return IPVendor(trained_cnn, digit_dataset)


@pytest.fixture(scope="module")
def generation(trained_cnn, digit_dataset):
    generator = TrainingSetSelector(
        trained_cnn, digit_dataset, candidate_pool=30, rng=0
    )
    return generator.generate(10)


@pytest.fixture(scope="module")
def package(vendor, generation):
    return vendor.build_package(generation)


@pytest.fixture(scope="module")
def scored_package(vendor, generation):
    """A v3 package carrying measured discrimination scores."""
    return vendor.build_package(
        generation, measure_discrimination=True, discrimination_trials=2
    )


@pytest.fixture(scope="module")
def tampered(trained_cnn):
    from repro.attacks import SingleBiasAttack

    return SingleBiasAttack(rng=3).apply(trained_cnn).model


# ---------------------------------------------------------------------------
# SPRT math
# ---------------------------------------------------------------------------


class TestSprtMath:
    def test_thresholds_bracket_zero(self):
        lower, upper = sprt_thresholds(0.01, 0.01)
        assert lower < 0.0 < upper
        assert upper == pytest.approx(math.log(0.99 / 0.01))
        assert lower == pytest.approx(math.log(0.01 / 0.99))

    def test_thresholds_reject_bad_rates(self):
        with pytest.raises(ValueError):
            sprt_thresholds(0.0, 0.5)
        with pytest.raises(ValueError):
            sprt_thresholds(0.5, 1.0)

    def test_increments_signs(self):
        match, mismatch = llr_increments()
        assert match < 0.0 < mismatch
        with pytest.raises(ValueError):
            llr_increments(0.5, 0.5)

    def test_one_mismatch_decides_tampered(self):
        verdict, decided, used, llr = decide_from_mismatches([True] + [False] * 9)
        assert verdict == VERDICT_TAMPERED and decided
        assert used == 1
        assert llr > 0.0

    def test_clean_respects_curtailment_floor(self):
        n = 24
        verdict, decided, used, _ = decide_from_mismatches([False] * n)
        assert verdict == VERDICT_CLEAN and decided
        assert used == clean_floor(n)
        assert used < n  # still strictly fewer queries than full replay

    def test_late_mismatch_is_not_missed(self):
        # mismatch just before the curtailment floor: the walk must reach it
        n = 24
        stream = [False] * n
        stream[clean_floor(n) - 2] = True
        verdict, decided, used, _ = decide_from_mismatches(stream)
        assert verdict == VERDICT_TAMPERED and decided
        assert used == clean_floor(n) - 1

    def test_budget_exhaustion_is_undecided(self):
        verdict, decided, used, _ = decide_from_mismatches([False] * 10, budget=3)
        assert verdict == VERDICT_CLEAN and not decided
        assert used == 3

    def test_clean_floor_values(self):
        assert clean_floor(0) == 0
        assert clean_floor(8) == 7
        assert clean_floor(24) == 21
        assert clean_floor(8, clean_fraction=1.0) == 8
        with pytest.raises(ValueError):
            clean_floor(8, clean_fraction=0.0)

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            decide_from_mismatches([False], confidence=1.0)


# ---------------------------------------------------------------------------
# query ordering
# ---------------------------------------------------------------------------


class TestQueryOrder:
    def test_entropy_order_prefers_boundary_outputs(self):
        # row 1 is uniform (max entropy), row 0 is peaked (min entropy)
        logits = np.array([[10.0, 0.0, 0.0], [1.0, 1.0, 1.0], [5.0, 0.0, 0.0]])
        order = entropy_order(logits)
        assert order[0] == 1 and order[-1] == 0

    def test_entropy_order_rejects_non_2d(self):
        with pytest.raises(ValueError):
            entropy_order(np.zeros(4))

    def test_query_order_uses_discrimination_when_present(self, scored_package):
        order, name = query_order(scored_package)
        assert name == "discrimination"
        scores = scored_package.discrimination[order]
        assert np.all(np.diff(scores) <= 0.0)  # descending

    def test_query_order_falls_back_to_entropy(self, package):
        order, name = query_order(package)
        assert name == "entropy"
        assert sorted(order.tolist()) == list(range(package.num_tests))


# ---------------------------------------------------------------------------
# package format v3
# ---------------------------------------------------------------------------


class TestPackageFormatV3:
    def test_discrimination_scores_measured(self, scored_package):
        scores = scored_package.discrimination
        assert scores is not None
        assert scores.shape == (scored_package.num_tests,)
        assert np.all((scores >= 0.0) & (scores <= 1.0))
        assert scored_package.metadata["discrimination_trials"] == 2

    @staticmethod
    def _stored_format(path) -> int:
        import json

        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
        return int(meta.get("format", 1))

    @staticmethod
    def _rewrite_format(path, version) -> None:
        import json

        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
        meta["format"] = version
        np.savez(
            path,
            __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            **arrays,
        )

    def test_v2_round_trip_without_discrimination(self, package, tmp_path):
        # content-driven version stamp: no discrimination → still format 2,
        # readable by v2-only builds
        path = package.save(tmp_path / "v2.npz")
        assert self._stored_format(path) == 2
        loaded = ValidationPackage.load(path)
        assert loaded.discrimination is None
        assert loaded.digest() == package.digest()

    def test_v3_round_trip_with_discrimination(self, scored_package, tmp_path):
        path = scored_package.save(tmp_path / "v3.npz")
        assert self._stored_format(path) == FORMAT_VERSION
        loaded = ValidationPackage.load(path)
        np.testing.assert_array_equal(
            loaded.discrimination, scored_package.discrimination
        )
        assert loaded.digest() == scored_package.digest()

    def test_v1_packages_still_load(self, package, tmp_path):
        # fabricate a legacy v1 file: v1 digests covered tests+outputs only
        path = package.save(tmp_path / "v1.npz")
        self._rewrite_format(path, 1)
        loaded = ValidationPackage.load(path, verify_digest=False)
        assert loaded.num_tests == package.num_tests
        assert loaded.discrimination is None

    def test_future_version_names_the_upgrade(self, scored_package, tmp_path):
        path = scored_package.save(tmp_path / "future.npz")
        self._rewrite_format(path, FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="upgrade repro"):
            ValidationPackage.load(path)

    def test_digest_covers_discrimination(self, scored_package):
        without = ValidationPackage(
            tests=scored_package.tests,
            expected_outputs=scored_package.expected_outputs,
            output_atol=scored_package.output_atol,
        )
        assert without.digest() != scored_package.digest()

    def test_subset_slices_discrimination(self, scored_package):
        sub = scored_package.subset(4)
        assert sub.discrimination.shape == (4,)
        np.testing.assert_array_equal(
            sub.discrimination, scored_package.discrimination[:4]
        )

    def test_discrimination_shape_validated(self, package):
        with pytest.raises(ValueError):
            ValidationPackage(
                tests=package.tests,
                expected_outputs=package.expected_outputs,
                discrimination=np.zeros(package.num_tests + 1),
            )


# ---------------------------------------------------------------------------
# transports and RemoteModel
# ---------------------------------------------------------------------------


class TestRemoteModel:
    def _counted(self, trained_cnn):
        calls = {"batches": 0, "inputs": 0}

        def fn(inputs):
            calls["batches"] += 1
            calls["inputs"] += len(inputs)
            return trained_cnn.predict(inputs)

        return fn, calls

    def test_matches_direct_predict(self, trained_cnn, package):
        remote = RemoteModel(CallableTransport(trained_cnn.predict))
        np.testing.assert_array_equal(
            remote(package.tests), trained_cnn.predict(package.tests)
        )

    def test_cache_never_rebills_repeated_fingerprints(self, trained_cnn, package):
        fn, calls = self._counted(trained_cnn)
        remote = RemoteModel(CallableTransport(fn))
        first = remote(package.tests)
        second = remote(package.tests)
        np.testing.assert_array_equal(first, second)
        assert calls["inputs"] == package.num_tests  # billed once
        assert remote.ledger.queries_sent == package.num_tests
        assert remote.ledger.cache_hits == package.num_tests
        assert remote.cache_size == package.num_tests

    def test_cache_disabled_rebills(self, trained_cnn, package):
        fn, calls = self._counted(trained_cnn)
        remote = RemoteModel(CallableTransport(fn), cache=False)
        remote(package.tests)
        remote(package.tests)
        assert calls["inputs"] == 2 * package.num_tests
        assert remote.cache_size == 0

    def test_micro_batching_splits_round_trips(self, trained_cnn, package):
        fn, calls = self._counted(trained_cnn)
        remote = RemoteModel(CallableTransport(fn), micro_batch=3)
        remote(package.tests)
        assert calls["batches"] == math.ceil(package.num_tests / 3)
        assert remote.ledger.requests == calls["batches"]

    def test_rate_limit_sleeps_between_requests(self, trained_cnn, package):
        sleeps = []
        clock = {"now": 0.0}

        def sleeper(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        remote = RemoteModel(
            CallableTransport(trained_cnn.predict),
            rate=1.0,
            burst=1,
            micro_batch=1,
            sleeper=sleeper,
            clock=lambda: clock["now"],
        )
        remote(package.tests[:3])
        # bucket starts full: first request free, the rest wait ~1s each
        assert len(sleeps) == 2
        assert all(s == pytest.approx(1.0, abs=1e-6) for s in sleeps)

    def test_transient_errors_retry_then_succeed(self, trained_cnn, package):
        attempts = {"n": 0}

        def flaky(inputs):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise TransportError("connection reset")
            return trained_cnn.predict(inputs)

        remote = RemoteModel(
            CallableTransport(flaky),
            policy=FaultPolicy(max_retries=3, backoff_base_s=0.0),
            sleeper=lambda _s: None,
        )
        outputs = remote(package.tests)
        np.testing.assert_array_equal(outputs, trained_cnn.predict(package.tests))
        assert remote.ledger.retries == 2
        assert remote.stats()["faults"]["retries"] == 2

    def test_non_transient_errors_propagate(self, package):
        def broken(inputs):
            raise ValueError("bad request")

        remote = RemoteModel(CallableTransport(broken), sleeper=lambda _s: None)
        with pytest.raises(ValueError, match="bad request"):
            remote(package.tests)

    def test_wrong_output_shape_rejected(self, package):
        remote = RemoteModel(CallableTransport(lambda inputs: np.zeros((1, 3))))
        with pytest.raises(ValueError, match="outputs"):
            remote(package.tests)

    def test_requires_send_method(self):
        with pytest.raises(TypeError, match="send"):
            RemoteModel(lambda inputs: inputs)

    def test_stats_merge_ledger_and_transport(self, trained_cnn, package):
        remote = RemoteModel(CallableTransport(trained_cnn.predict))
        remote(package.tests[:2])
        stats = remote.stats()
        assert stats["queries_sent"] == 2
        assert stats["transport"] == {"transport": "callable"}
        assert QueryLedger(**{k: stats[k] for k in QueryLedger().to_dict()})


class TestTransportRegistry:
    def test_namespace_registered(self):
        assert "transports" in registry.namespaces()
        names = {entry.name for entry in registry.entries("transports")}
        assert {"callable", "http"} <= names

    def test_resolve_by_name(self, trained_cnn):
        transport = resolve_transport("callable", fn=trained_cnn.predict)
        assert isinstance(transport, CallableTransport)

    def test_resolve_passthrough_and_callable(self, trained_cnn):
        transport = CallableTransport(trained_cnn.predict)
        assert resolve_transport(transport) is transport
        wrapped = resolve_transport(trained_cnn.predict)
        assert isinstance(wrapped, CallableTransport)

    def test_resolve_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_transport(42)

    def test_http_transport_validates_args(self):
        with pytest.raises(ValueError):
            HttpTransport("", "model.npz")
        with pytest.raises(ValueError):
            HttpTransport("http://x", "")
        with pytest.raises(ValueError):
            HttpTransport("http://x", "model.npz", timeout_s=0.0)


# ---------------------------------------------------------------------------
# the sequential verifier
# ---------------------------------------------------------------------------


class TestOnlineVerifier:
    def test_clean_decides_before_full_replay(self, trained_cnn, scored_package):
        report = verify_online(trained_cnn, scored_package)
        assert report.verdict == VERDICT_CLEAN and report.decided
        assert report.queries_used == clean_floor(scored_package.num_tests)
        assert report.queries_used < scored_package.num_tests
        assert report.queries_saved > 0
        assert report.order == "discrimination"
        assert not report.detected

    def test_tampered_decides_early(self, tampered, scored_package):
        full = validate_ip(tampered, scored_package)
        report = verify_online(tampered, scored_package)
        assert report.detected == full.detected
        if full.detected:
            assert report.verdict == VERDICT_TAMPERED and report.decided
            assert report.queries_used <= scored_package.num_tests
            assert set(report.mismatched_indices) <= set(full.mismatched_indices)

    def test_budget_exhaustion_reports_undecided(self, trained_cnn, scored_package):
        report = verify_online(trained_cnn, scored_package, query_budget=2)
        assert not report.decided
        assert report.queries_used == 2
        assert report.verdict == VERDICT_CLEAN
        assert "budget-exhausted" in report.summary()

    def test_probe_batch_bills_whole_probes(self, trained_cnn, scored_package):
        report = verify_online(trained_cnn, scored_package, probe_batch=4)
        assert report.queries_used % 4 == 0 or report.queries_used == (
            scored_package.num_tests
        )

    def test_remote_ledger_attached(self, trained_cnn, scored_package):
        remote = RemoteModel(CallableTransport(trained_cnn.predict))
        report = verify_online(remote, scored_package)
        assert report.ledger is not None
        assert report.ledger["queries_sent"] == report.queries_used

    def test_shape_tampering_is_detected(self, scored_package):
        report = verify_online(lambda inputs: np.zeros((len(inputs), 3)), scored_package)
        assert report.detected
        assert report.queries_used == 1
        assert report.max_output_deviation == np.inf

    def test_report_round_trips_as_dict(self, trained_cnn, scored_package):
        report = verify_online(trained_cnn, scored_package)
        clone = type(report).from_dict(report.to_dict())
        assert clone == report

    def test_parameter_validation(self, trained_cnn, scored_package):
        with pytest.raises(ValueError):
            OnlineVerifier(trained_cnn, scored_package, confidence=0.0)
        with pytest.raises(ValueError):
            OnlineVerifier(trained_cnn, scored_package, query_budget=0)
        with pytest.raises(ValueError):
            OnlineVerifier(trained_cnn, scored_package, probe_batch=0)

    def test_default_clean_fraction_pinned(self):
        # the curtailment operating point the bench gate was tuned against
        assert DEFAULT_CLEAN_FRACTION == 0.875


# ---------------------------------------------------------------------------
# coalescer cross-tenant fairness
# ---------------------------------------------------------------------------


class TestCoalescerFairness:
    def _coalescer(self, dispatched, **kwargs):
        from repro.serve import BatchingCoalescer

        async def dispatch(package, models):
            dispatched.append(list(models))
            return np.arange(len(models), dtype=float).reshape(-1, 1, 1)

        kwargs.setdefault("window_s", 0.01)
        return BatchingCoalescer(dispatch, **kwargs)

    class FakePackage:
        pass

    def test_per_tenant_cap_splits_dispatches(self):
        dispatched = []
        coalescer = self._coalescer(dispatched, max_per_tenant=2)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                *[
                    coalescer.submit("fp", package, f"d{i}", f"m{i}", tenant="hog")
                    for i in range(5)
                ]
            )

        results = asyncio.run(main())
        assert len(results) == 5
        # 5 same-tenant models at cap 2 → dispatches of 2, 2, 1
        assert sorted(len(batch) for batch in dispatched) == [1, 2, 2]
        assert coalescer.stats.fairness_evictions >= 3

    def test_other_tenants_keep_their_seats(self):
        dispatched = []
        coalescer = self._coalescer(dispatched, max_per_tenant=2, max_models=8)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                *[
                    coalescer.submit("fp", package, f"hog-{i}", f"h{i}", tenant="hog")
                    for i in range(4)
                ],
                coalescer.submit("fp", package, "small", "s0", tenant="small"),
            )

        results = asyncio.run(main())
        assert len(results) == 5
        first = dispatched[0]
        # the small tenant rides the first dispatch; the hog is capped at 2
        assert "s0" in first
        assert sum(1 for m in first if str(m).startswith("h")) == 2
        assert coalescer.stats.fairness_evictions == 2

    def test_no_cap_means_no_evictions(self):
        dispatched = []
        coalescer = self._coalescer(dispatched)
        package = self.FakePackage()

        async def main():
            await asyncio.gather(
                *[
                    coalescer.submit("fp", package, f"d{i}", f"m{i}", tenant="hog")
                    for i in range(5)
                ]
            )

        asyncio.run(main())
        assert len(dispatched) == 1
        assert coalescer.stats.fairness_evictions == 0

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            self._coalescer([], max_per_tenant=0)

    def test_fairness_evictions_in_stats_dict(self):
        coalescer = self._coalescer([])
        assert coalescer.stats.to_dict()["fairness_evictions"] == 0


# ---------------------------------------------------------------------------
# the /v1/query endpoint
# ---------------------------------------------------------------------------


class TestQueryEndpoint:
    @pytest.fixture(scope="class")
    def served(self, trained_cnn, digit_dataset, tmp_path_factory):
        """A released mnist-style package saved for serving."""
        from repro.api import ReleaseRequest, Session

        with Session() as session:
            released = session.release(
                ReleaseRequest(
                    dataset="mnist",
                    train_size=30,
                    test_size=12,
                    epochs=1,
                    width_multiplier=0.1,
                    num_tests=3,
                    candidate_pool=10,
                    gradient_updates=3,
                )
            )
        directory = tmp_path_factory.mktemp("query-artifacts")
        released.save(directory)
        return released, directory

    def _serve(self, directory, fn):
        from repro.serve import HttpServer, ServeConfig, ValidationService

        async def main():
            config = ServeConfig(
                port=0, artifacts_root=str(directory), coalesce_window_s=0.0
            )
            service = ValidationService(config)
            server = HttpServer(service, config)
            host, port = await server.start()
            try:
                return await fn(host, port)
            finally:
                await server.stop()

        return asyncio.run(main())

    def test_query_round_trips_exact_float64(self, served):
        released, directory = served
        tests = released.package.tests

        async def run(host, port):
            from repro.serve import HttpClient

            client = HttpClient(host, port, tenant="query-test")
            status, body = await client.post(
                "/v1/query",
                {
                    "schema_version": 1,
                    "kind": "query",
                    "body": {
                        "model_path": "model.npz",
                        "arch": "mnist",
                        "width_multiplier": 0.1,
                        "inputs": tests.tolist(),
                    },
                },
            )
            stats = await client.stats()
            return status, body, stats

        status, body, stats = self._serve(directory, run)
        assert status == 200
        assert body["kind"] == "query_result"
        outputs = np.asarray(body["body"]["outputs"], dtype=np.float64)
        np.testing.assert_array_equal(outputs, released.model.predict(tests))
        assert stats["queries"]["requests"] == 1
        assert stats["queries"]["inputs"] == len(tests)
        assert stats["operations"]["query"] == 1

    def test_query_path_is_sandboxed(self, served):
        _released, directory = served

        async def run(host, port):
            from repro.serve import HttpClient

            client = HttpClient(host, port)
            return await client.post(
                "/v1/query",
                {
                    "schema_version": 1,
                    "kind": "query",
                    "body": {
                        "model_path": "../escape.npz",
                        "arch": "mnist",
                        "inputs": [[0.0]],
                    },
                },
            )

        status, body = self._serve(directory, run)
        assert status == 400
        assert "artifacts_root" in body["error"]

    def test_remote_model_full_loop(self, served):
        released, directory = served
        package = released.package

        async def run(host, port):
            loop = asyncio.get_running_loop()
            transport = HttpTransport(
                f"http://{host}:{port}",
                model_path="model.npz",
                arch="mnist",
                width_multiplier=0.1,
            )
            remote = RemoteModel(transport)
            outputs = await loop.run_in_executor(None, remote, package.tests)
            return outputs, remote.stats()

        outputs, stats = self._serve(directory, run)
        np.testing.assert_array_equal(outputs, released.model.predict(package.tests))
        assert stats["queries_sent"] == package.num_tests
        assert stats["transport"]["transport"] == "http"


# ---------------------------------------------------------------------------
# the verify CLI and api wiring
# ---------------------------------------------------------------------------


class TestVerifyCli:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro.api import ReleaseRequest, Session

        with Session() as session:
            released = session.release(
                ReleaseRequest(
                    dataset="mnist",
                    train_size=30,
                    test_size=12,
                    epochs=1,
                    width_multiplier=0.1,
                    num_tests=4,
                    candidate_pool=10,
                    gradient_updates=3,
                    measure_discrimination=True,
                    discrimination_trials=2,
                )
            )
        directory = tmp_path_factory.mktemp("verify-cli")
        return released.save(directory)

    def test_verify_local_sequential(self, artifacts, capsys):
        from repro.cli import main

        code = main(
            [
                "verify",
                "--package",
                str(artifacts["package"]),
                "--model",
                str(artifacts["model"]),
                "--arch",
                "mnist",
                "--width",
                "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sequential verdict" in out

    def test_verify_expect_detected_flips_exit_code(self, artifacts):
        from repro.cli import main

        code = main(
            [
                "verify",
                "--package",
                str(artifacts["package"]),
                "--model",
                str(artifacts["model"]),
                "--arch",
                "mnist",
                "--width",
                "0.1",
                "--expect-detected",
            ]
        )
        assert code == 3  # clean model, detection expected

    def test_validate_request_mode_validation(self):
        from repro.api import ValidateRequest

        with pytest.raises(ValueError, match="mode"):
            ValidateRequest(package="p.npz", mode="express").validate()
        with pytest.raises(ValueError, match="confidence"):
            ValidateRequest(
                package="p.npz", mode="sequential", confidence=2.0
            ).validate()
        with pytest.raises(ValueError, match="model_path"):
            ValidateRequest(
                package="p.npz", remote_url="http://127.0.0.1:1"
            ).validate()

    def test_session_sequential_outcome(self, artifacts):
        from repro.api import Session, ValidateRequest

        with Session() as session:
            outcome = session.validate(
                ValidateRequest(
                    package=str(artifacts["package"]),
                    model_path=str(artifacts["model"]),
                    arch="mnist",
                    width_multiplier=0.1,
                    mode="sequential",
                )
            )
        assert outcome.passed
        assert outcome.mode == "sequential"
        assert outcome.sequential is not None
        # at N=4 four matches cannot reach the 0.99 clean threshold, so the
        # set exhausts undecided with a clean (full-replay-rule) verdict
        assert outcome.sequential["queries_used"] <= outcome.num_tests
        assert outcome.sequential["verdict"] == "clean"
        assert "sequential verdict" in outcome.summary()

    def test_outcome_wire_round_trip(self, artifacts):
        from repro.api import Session, ValidateRequest, ValidationOutcome

        with Session() as session:
            outcome = session.validate(
                ValidateRequest(
                    package=str(artifacts["package"]),
                    model_path=str(artifacts["model"]),
                    arch="mnist",
                    width_multiplier=0.1,
                    mode="sequential",
                )
            )
        clone = ValidationOutcome.from_wire(outcome.to_wire())
        assert clone.mode == "sequential"
        assert clone.sequential == outcome.sequential


# ---------------------------------------------------------------------------
# property: sequential verdict == full-replay verdict on the CI matrix
# ---------------------------------------------------------------------------


class TestSequentialMatchesFullReplay:
    """Satellite property: for every (model, attack, criterion) cell of the
    pinned CI matrix, sequential mode reaches the same detected/clean
    verdict as full replay (scaled-down sizes keep this inside test time;
    the full-size gate lives in benchmarks/bench_verify.py)."""

    SCALED = dict(
        num_tests=8,
        strategy="combined",
        train_size=40,
        test_size=12,
        epochs=1,
        width_multiplier=0.1,
        candidate_pool=16,
        gradient_updates=3,
        measure_discrimination=True,
        discrimination_trials=2,
        seed=2019,
    )

    @staticmethod
    def _matrix_axes():
        root = Path(__file__).resolve().parents[1]
        from repro.campaign import CampaignSpec

        spec = CampaignSpec.load(root / ".github" / "campaign" / "ci_matrix.toml")
        return spec.models, spec.criteria, spec.attacks

    def test_verdicts_agree_on_every_cell(self):
        from repro.api import ReleaseRequest, RunConfig, Session
        from repro.validation import default_attack_factories

        models, criteria, attacks = self._matrix_axes()
        disagreements = []
        with Session(RunConfig(seed=2019)) as session:
            for model_name in models:
                for criterion in criteria:
                    released = session.release(
                        ReleaseRequest(
                            dataset=model_name, criterion=criterion, **self.SCALED
                        )
                    )
                    package = released.package
                    factories = default_attack_factories(package.tests)
                    cells = [("clean", released.model)]
                    for attack in attacks:
                        rng = np.random.default_rng(7)
                        cells.append(
                            (attack, factories[attack](rng).apply(released.model).model)
                        )
                    for cell_name, ip in cells:
                        full = validate_ip(ip, package)
                        sequential = verify_online(ip, package)
                        if sequential.detected != full.detected:
                            disagreements.append(
                                f"{model_name}/{criterion}/{cell_name}"
                            )
        assert not disagreements, (
            "sequential verdict diverged from full replay on: "
            + ", ".join(disagreements)
        )
