"""Integration tests for the packed coverage-map refactor.

The acceptance bar of the refactor: packed greedy selection must pick
*byte-identical* test sequences (indices, gains, coverage histories) to the
dense implementation — same argmax tie-breaking — on both Table-I
architectures, across execution backends, and the packed representation must
occupy ≤ 1/8 of the dense mask bytes.  Also covers the satellite fixes:
recorded dataset indices (duplicate-safe provenance), explicit availability
instead of the ``-1.0`` gain sentinel, and validation-package format v2 with
backward-compatible loading.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coverage import (
    ActivationMaskCache,
    CoverageMap,
    CoverageTracker,
    MaskMatrix,
    MmapMaskMatrix,
    MmapMaskWriter,
    NeuronCoverage,
    NeuronMaskCache,
    ParameterCoverage,
    count_neurons,
    neuron_activation_masks,
    packed_activation_masks,
)
from repro.coverage.bitmap import MMAP_HEADER_BYTES, MMAP_MAGIC, num_words
from repro.coverage.activation import default_criterion_for
from repro.data.datasets import Dataset
from repro.engine import Engine, ParallelBackend
from repro.models.zoo import cifar_cnn, mnist_cnn
from repro.testgen.base import GenerationResult
from repro.testgen.neuron_testgen import NeuronCoverageSelector
from repro.testgen.selection import TrainingSetSelector
from repro.validation.package import FORMAT_VERSION, ValidationPackage
from repro.validation.vendor import IPVendor


# -- Table-I architectures (width-scaled so tests stay fast) -----------------


@pytest.fixture(scope="module")
def mnist_model():
    """The Table-I MNIST architecture (Tanh), width-scaled."""
    return mnist_cnn(width_multiplier=0.125, input_size=28, rng=0)


@pytest.fixture(scope="module")
def cifar_model():
    """The Table-I CIFAR architecture (ReLU), width-scaled."""
    return cifar_cnn(width_multiplier=0.0625, input_size=32, rng=0)


@pytest.fixture(scope="module")
def mnist_pool(mnist_model):
    rng = np.random.default_rng(1)
    return rng.random((16, *mnist_model.input_shape))


@pytest.fixture(scope="module")
def cifar_pool(cifar_model):
    rng = np.random.default_rng(2)
    return rng.random((16, *cifar_model.input_shape))


def dense_reference_greedy(masks: np.ndarray, budget: int):
    """The pre-refactor dense greedy loop, kept verbatim as ground truth.

    Dense boolean matrix, ``-1.0`` sentinel for unavailable candidates,
    ``np.argmax`` over float gains — exactly what ``TrainingSetSelector``
    did before masks were packed.
    """
    total = masks.shape[1]
    covered = np.zeros(total, dtype=bool)
    available = np.ones(masks.shape[0], dtype=bool)
    order, gains, history = [], [], []
    for _ in range(min(budget, masks.shape[0])):
        new_bits = (masks & ~covered[None, :]).sum(axis=1)
        pool_gains = new_bits / total
        pool_gains[~available] = -1.0
        best = int(np.argmax(pool_gains))
        covered |= masks[best]
        available[best] = False
        order.append(best)
        gains.append(new_bits[best] / total)
        history.append(covered.sum() / total)
    return order, gains, history


class TestPackedGreedyEquivalence:
    """Packed selection == dense reference, on both Table-I architectures."""

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    def test_selection_identical_to_dense_reference(self, arch, request):
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")
        dataset = Dataset(images=pool, labels=np.zeros(len(pool), dtype=np.int64))

        selector = TrainingSetSelector(model, dataset, rng=0)
        result = selector.generate(num_tests=len(pool))

        dense_masks = selector._ensure_cache().masks  # materialised for the oracle
        order, gains, history = dense_reference_greedy(dense_masks, len(pool))

        np.testing.assert_array_equal(result.dataset_indices, order)
        np.testing.assert_array_equal(result.tests, pool[order])
        assert result.gains == gains
        assert result.coverage_history == history

    @pytest.mark.parametrize("arch", ["mnist", "cifar"])
    def test_packed_masks_bitwise_equal_dense(self, arch, request):
        model = request.getfixturevalue(f"{arch}_model")
        pool = request.getfixturevalue(f"{arch}_pool")
        engine = Engine(model)
        dense = engine.activation_masks(pool)
        packed = engine.packed_activation_masks(pool)
        np.testing.assert_array_equal(packed.dense(), dense)
        # the memory bar: packed ≤ 1/8 of the dense mask bytes, up to the
        # word-granularity padding (< 8 bytes per row)
        assert packed.nbytes <= packed.dense_nbytes // 8 + 8 * len(packed)
        assert packed.nbytes < packed.dense_nbytes / 7.9

    def test_duplicated_masks_tie_break_identical(self, mnist_model):
        # a pool of duplicated images produces identical masks — gains tie
        # on every iteration, and packed must break ties exactly like dense
        rng = np.random.default_rng(3)
        base = rng.random((4, *mnist_model.input_shape))
        pool = np.concatenate([base, base[::-1]], axis=0)  # every mask twice
        dataset = Dataset(images=pool, labels=np.zeros(8, dtype=np.int64))

        selector = TrainingSetSelector(mnist_model, dataset, rng=0)
        result = selector.generate(num_tests=8)
        dense_masks = selector._ensure_cache().masks
        order, _gains, _history = dense_reference_greedy(dense_masks, 8)
        np.testing.assert_array_equal(result.dataset_indices, order)


class TestBackendDeterminism:
    """Selection order identical across backends × representations."""

    def test_selection_order_matches_across_backends(self, mnist_model, mnist_pool):
        dataset = Dataset(
            images=mnist_pool, labels=np.zeros(len(mnist_pool), dtype=np.int64)
        )
        single = TrainingSetSelector(
            mnist_model, dataset, rng=0, engine=Engine(mnist_model, backend="numpy")
        ).generate(num_tests=6)

        backend = ParallelBackend(workers=2)
        try:
            parallel = TrainingSetSelector(
                mnist_model, dataset, rng=0, engine=Engine(mnist_model, backend=backend)
            ).generate(num_tests=6)
        finally:
            backend.close()

        np.testing.assert_array_equal(single.dataset_indices, parallel.dataset_indices)
        assert single.gains == parallel.gains
        assert single.coverage_history == parallel.coverage_history

    def test_packed_masks_identical_across_backends(self, mnist_model, mnist_pool):
        backend = ParallelBackend(workers=2)
        try:
            par = Engine(mnist_model, backend=backend).packed_activation_masks(
                mnist_pool
            )
        finally:
            backend.close()
        ref = Engine(mnist_model).packed_activation_masks(mnist_pool)
        assert par == ref

    def test_packed_neuron_masks_match_dense_and_backends(
        self, mnist_model, mnist_pool
    ):
        dense = neuron_activation_masks(mnist_model, mnist_pool)
        packed = Engine(mnist_model).packed_neuron_masks(mnist_pool)
        np.testing.assert_array_equal(packed.dense(), dense)
        backend = ParallelBackend(workers=2)
        try:
            par = Engine(mnist_model, backend=backend).packed_neuron_masks(mnist_pool)
        finally:
            backend.close()
        assert par == packed


class TestMemoryBudget:
    def test_budgeted_construction_equals_unbudgeted(self, mnist_model, mnist_pool):
        engine = Engine(mnist_model, cache=False)
        full = engine.packed_activation_masks(mnist_pool)
        # a budget of one row's gradients forces single-sample chunks
        tiny = engine.packed_activation_masks(
            mnist_pool, memory_budget_bytes=mnist_model.num_parameters() * 8
        )
        assert tiny == full

    def test_neuron_budget_equals_unbudgeted(self, mnist_model, mnist_pool):
        engine = Engine(mnist_model, cache=False)
        full = engine.packed_neuron_masks(mnist_pool)
        # one sample's activation volume forces single-sample chunks
        tiny = engine.packed_neuron_masks(mnist_pool, memory_budget_bytes=1)
        assert tiny == full

    def test_cached_gradient_reuse_honours_budget(self, mnist_model, mnist_pool):
        engine = Engine(mnist_model)
        grads = engine.output_gradients(mnist_pool)  # memoized dense grads
        assert grads is not None
        budgeted = engine.packed_activation_masks(
            mnist_pool, memory_budget_bytes=mnist_model.num_parameters() * 8
        )
        reference = Engine(mnist_model, cache=False).packed_activation_masks(
            mnist_pool
        )
        assert budgeted == reference

    def test_budget_must_be_positive(self, mnist_model, mnist_pool):
        with pytest.raises(ValueError):
            Engine(mnist_model).packed_activation_masks(
                mnist_pool, memory_budget_bytes=0
            )

    def test_cache_accepts_budget(self, mnist_model, mnist_pool):
        cache = ActivationMaskCache(
            mnist_model, mnist_pool, memory_budget_bytes=10_000_000
        )
        assert len(cache) == len(mnist_pool)
        assert cache.nbytes < cache.packed.dense_nbytes / 7.9


def windowed_greedy(masks, budget):
    """Generic greedy loop over any MaskMatrix (dense or mmap)."""
    covered = CoverageMap(masks.nbits)
    available = np.ones(len(masks), dtype=bool)
    order = []
    for _ in range(min(budget, len(masks))):
        best, _gain = masks.best_candidate(covered, available)
        covered.union_(masks.row(best))
        available[best] = False
        order.append(best)
    return order, covered


class TestMmapMaskStore:
    """Disk-spilled packed masks: byte-identical selection under a budget.

    The acceptance bar of the mmap satellite: a 4× candidate pool spilled to
    disk and streamed through windows bounded by **half** the packed bytes
    must pick byte-identical greedy selections to the dense in-RAM matrix.
    """

    @pytest.fixture(scope="class")
    def big_pool(self, mnist_model):
        # 4× the standard 16-sample pool of these tests
        rng = np.random.default_rng(7)
        return rng.random((64, *mnist_model.input_shape))

    @pytest.fixture(scope="class")
    def dense_masks(self, mnist_model, big_pool):
        return Engine(mnist_model, cache=False).packed_activation_masks(big_pool)

    def test_spilled_selection_byte_identical_under_half_budget(
        self, mnist_model, big_pool, dense_masks, tmp_path_factory
    ):
        spill = tmp_path_factory.mktemp("spill")
        budget = max(1, int(dense_masks.nbytes) // 2)
        # for this width-scaled model half the packed bytes is below even one
        # float64 gradient row, so the build also warns about chunk overshoot
        with pytest.warns(RuntimeWarning, match="smaller than one sample"):
            spilled = Engine(mnist_model, cache=False).packed_activation_masks(
                big_pool, spill_dir=spill, memory_budget_bytes=budget
            )
        assert isinstance(spilled, MmapMaskMatrix)
        assert spilled.memory_budget_bytes == budget
        # the window is a strict subset of the pool: streaming is exercised
        assert spilled._window_rows() < len(spilled)
        # the on-disk words are byte-identical to the in-RAM packing
        assert np.array_equal(
            np.asarray(spilled.words, dtype=np.uint64), dense_masks.words
        )
        dense_order, dense_covered = windowed_greedy(dense_masks, 16)
        mmap_order, mmap_covered = windowed_greedy(spilled, 16)
        assert mmap_order == dense_order
        assert np.array_equal(mmap_covered.words, dense_covered.words)

    def test_streamed_primitives_match_dense(self, dense_masks, tmp_path):
        path = tmp_path / "store.masks"
        with MmapMaskWriter(path, dense_masks.nbits) as writer:
            writer.append(dense_masks.words)
            # one row per window: maximum number of partial windows
            store = writer.close(
                memory_budget_bytes=num_words(dense_masks.nbits) * 8
            )
        assert store._window_rows() == 1
        np.testing.assert_array_equal(store.counts(), dense_masks.counts())
        assert np.array_equal(store.union().words, dense_masks.union().words)
        covered = dense_masks.row(3)
        np.testing.assert_array_equal(
            store.marginal_counts(covered), dense_masks.marginal_counts(covered)
        )

    def test_window_not_dividing_rows(self, dense_masks, tmp_path):
        # 64 rows streamed in windows of 3: the final window is partial
        path = tmp_path / "ragged.masks"
        with MmapMaskWriter(path, dense_masks.nbits) as writer:
            writer.append(dense_masks.words)
            store = writer.close(
                memory_budget_bytes=3 * num_words(dense_masks.nbits) * 8
            )
        assert store._window_rows() == 3 and len(store) % 3 != 0
        np.testing.assert_array_equal(store.counts(), dense_masks.counts())
        assert np.array_equal(store.union().words, dense_masks.union().words)

    def test_sub_row_budget_warns_and_still_matches(
        self, mnist_model, mnist_pool, tmp_path
    ):
        # a budget below one gradient row cannot be honoured: the engine
        # warns and chunks one sample at a time instead of failing
        reference = Engine(mnist_model, cache=False).packed_activation_masks(
            mnist_pool
        )
        with pytest.warns(RuntimeWarning, match="smaller than one sample"):
            spilled = Engine(mnist_model, cache=False).packed_activation_masks(
                mnist_pool, spill_dir=tmp_path, memory_budget_bytes=8
            )
        assert spilled._window_rows() == 1
        assert np.array_equal(
            np.asarray(spilled.words, dtype=np.uint64), reference.words
        )

    def test_spill_store_reused_across_queries(self, mnist_model, mnist_pool, tmp_path):
        engine = Engine(mnist_model, cache=False)
        first = engine.packed_activation_masks(mnist_pool, spill_dir=tmp_path)
        stat = first.path.stat()
        again = engine.packed_activation_masks(mnist_pool, spill_dir=tmp_path)
        # the second query maps the existing file instead of rebuilding it
        # (same inode), but touches its mtime — the last-use marker that
        # `campaign gc-spill` uses to keep live stores
        assert again.path == first.path
        assert again.path.stat().st_ino == stat.st_ino
        assert again.path.stat().st_mtime_ns >= stat.st_mtime_ns
        assert again == first

    def test_mismatched_store_rebuilt(self, mnist_model, mnist_pool, tmp_path):
        engine = Engine(mnist_model, cache=False)
        first = engine.packed_activation_masks(mnist_pool, spill_dir=tmp_path)
        # overwrite with a valid store of the wrong shape: must be rebuilt
        with MmapMaskWriter(first.path, first.nbits) as writer:
            writer.append(np.asarray(first.words[:2], dtype=np.uint64))
            writer.close()
        rebuilt = engine.packed_activation_masks(mnist_pool, spill_dir=tmp_path)
        assert len(rebuilt) == len(mnist_pool)
        assert rebuilt == first

    def test_spilled_neuron_masks_match(self, mnist_model, mnist_pool, tmp_path):
        reference = Engine(mnist_model, cache=False).packed_neuron_masks(mnist_pool)
        spilled = Engine(mnist_model, cache=False).packed_neuron_masks(
            mnist_pool, spill_dir=tmp_path
        )
        assert isinstance(spilled, MmapMaskMatrix)
        assert np.array_equal(
            np.asarray(spilled.words, dtype=np.uint64), reference.words
        )

    # -- corrupt stores --------------------------------------------------------
    def test_open_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.masks"
        path.write_bytes(b"NOTAMASK" + b"\x00" * 16)
        with pytest.raises(ValueError, match="bad magic"):
            MmapMaskMatrix.open(path)

    def test_open_rejects_short_header(self, tmp_path):
        path = tmp_path / "short.masks"
        path.write_bytes(MMAP_MAGIC)
        with pytest.raises(ValueError, match="torn"):
            MmapMaskMatrix.open(path)

    def test_open_rejects_truncated_rows(self, dense_masks, tmp_path):
        path = tmp_path / "torn.masks"
        with MmapMaskWriter(path, dense_masks.nbits) as writer:
            writer.append(dense_masks.words)
            writer.close()
        full = path.read_bytes()
        path.write_bytes(full[:-8])  # tear one word off the final row
        with pytest.raises(ValueError, match="torn"):
            MmapMaskMatrix.open(path)
        # a row-count/payload mismatch in the other direction is also torn
        path.write_bytes(full + b"\x00" * 8)
        with pytest.raises(ValueError, match="torn"):
            MmapMaskMatrix.open(path)

    def test_interrupted_writer_leaves_no_store(self, dense_masks, tmp_path):
        path = tmp_path / "crash.masks"
        with pytest.raises(RuntimeError):
            with MmapMaskWriter(path, dense_masks.nbits) as writer:
                writer.append(dense_masks.words[:4])
                raise RuntimeError("interrupted mid-build")
        # the atomic-rename protocol: neither the store nor the temp survive
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_writer_validates_chunks(self, tmp_path):
        writer = MmapMaskWriter(tmp_path / "w.masks", nbits=70)
        with pytest.raises(ValueError, match="shape"):
            writer.append(np.zeros((2, 3), dtype=np.uint64))  # needs 2 words
        writer.abort()
        with pytest.raises(ValueError, match="closed"):
            writer.append(np.zeros((1, 2), dtype=np.uint64))

    def test_header_is_little_endian(self, tmp_path):
        with MmapMaskWriter(tmp_path / "le.masks", nbits=70) as writer:
            writer.append(np.ones((3, 2), dtype=np.uint64))
            store = writer.close()
        raw = store.path.read_bytes()
        assert raw[: len(MMAP_MAGIC)] == MMAP_MAGIC
        header = np.frombuffer(raw[:MMAP_HEADER_BYTES], dtype="<u8", offset=8)
        assert header.tolist() == [70, 3]

    def test_budget_must_be_positive(self, tmp_path):
        with MmapMaskWriter(tmp_path / "b.masks", nbits=8) as writer:
            writer.append(np.ones((1, 1), dtype=np.uint64))
            store = writer.close()
        with pytest.raises(ValueError, match="positive"):
            MmapMaskMatrix.open(store.path, memory_budget_bytes=0)


class TestAvailabilitySemantics:
    """Satellite: explicit availability instead of the -1.0 gain sentinel."""

    @pytest.fixture(scope="class")
    def cache(self, mnist_model, mnist_pool):
        return ActivationMaskCache(mnist_model, mnist_pool)

    def test_all_covered_pool_reports_zero_not_sentinel(self, cache, mnist_model):
        everything = np.ones(mnist_model.num_parameters(), dtype=bool)
        gains = cache.marginal_gains(everything)
        np.testing.assert_array_equal(gains, np.zeros(len(cache)))

    def test_unavailable_candidates_are_nan_not_negative(self, cache, mnist_model):
        everything = np.ones(mnist_model.num_parameters(), dtype=bool)
        available = np.ones(len(cache), dtype=bool)
        available[:3] = False
        gains = cache.marginal_gains(everything, available)
        assert np.isnan(gains[:3]).all()
        # an all-zero-gain pool cannot alias with unavailability any more
        np.testing.assert_array_equal(gains[3:], np.zeros(len(cache) - 3))

    def test_best_candidate_skips_unavailable_on_zero_gains(
        self, cache, mnist_model
    ):
        everything = np.ones(mnist_model.num_parameters(), dtype=bool)
        available = np.zeros(len(cache), dtype=bool)
        available[5] = True
        best, gain = cache.best_candidate(everything, available)
        assert best == 5 and gain == 0.0

    def test_best_candidate_exhausted_pool_raises(self, cache, mnist_model):
        with pytest.raises(ValueError, match="no candidates available"):
            cache.best_candidate(
                CoverageMap(mnist_model.num_parameters()),
                np.zeros(len(cache), dtype=bool),
            )

    def test_neuron_cache_mirrors_semantics(self, mnist_model, mnist_pool):
        cache = NeuronMaskCache(mnist_model, mnist_pool[:6])
        everything = np.ones(count_neurons(mnist_model), dtype=bool)
        available = np.array([False, True, True, False, True, True])
        gains = cache.marginal_gains(everything, available)
        assert np.isnan(gains[0]) and np.isnan(gains[3])
        best, _ = cache.best_candidate(everything, available)
        assert best == 1


class TestDatasetIndexRecording:
    """Satellite: provenance recorded at selection time, duplicate-safe."""

    def test_duplicate_training_images_resolve_distinctly(self, mnist_model):
        rng = np.random.default_rng(4)
        base = rng.random((5, *mnist_model.input_shape))
        images = np.concatenate([base, base[2:3]], axis=0)  # index 5 == index 2
        dataset = Dataset(images=images, labels=np.zeros(6, dtype=np.int64))

        selector = TrainingSetSelector(mnist_model, dataset, rng=0)
        result = selector.generate(num_tests=6)
        recorded = selector.selected_dataset_indices(result)

        # every pool index selected exactly once — the duplicate pair appears
        # as {2, 5}, which the removed pixel rematch could never produce
        assert sorted(recorded.tolist()) == [0, 1, 2, 3, 4, 5]

        # index-less legacy results are rejected outright: the ambiguous
        # pixel-equality rematch fallback was removed
        legacy = GenerationResult(
            tests=result.tests,
            coverage_history=list(result.coverage_history),
            gains=list(result.gains),
            sources=list(result.sources),
            method=result.method,
        )
        with pytest.raises(ValueError, match="no recorded dataset_indices"):
            selector.selected_dataset_indices(legacy)

    def test_round_trip_with_candidate_pool(self, mnist_model, mnist_pool):
        dataset = Dataset(
            images=mnist_pool, labels=np.zeros(len(mnist_pool), dtype=np.int64)
        )
        selector = TrainingSetSelector(mnist_model, dataset, candidate_pool=10, rng=0)
        result = selector.generate(num_tests=4)
        indices = selector.selected_dataset_indices(result)
        np.testing.assert_array_equal(dataset.images[indices], result.tests)

    def test_neuron_selector_records_indices(self, mnist_model, mnist_pool):
        dataset = Dataset(
            images=mnist_pool, labels=np.zeros(len(mnist_pool), dtype=np.int64)
        )
        result = NeuronCoverageSelector(mnist_model, dataset, rng=0).generate(4)
        assert result.dataset_indices is not None
        np.testing.assert_array_equal(
            dataset.images[result.dataset_indices], result.tests
        )

    def test_truncated_slices_indices(self, mnist_model, mnist_pool):
        dataset = Dataset(
            images=mnist_pool, labels=np.zeros(len(mnist_pool), dtype=np.int64)
        )
        result = TrainingSetSelector(mnist_model, dataset, rng=0).generate(5)
        truncated = result.truncated(2)
        np.testing.assert_array_equal(
            truncated.dataset_indices, result.dataset_indices[:2]
        )


class TestCoverageCriterionProtocol:
    """The pluggable criterion → MaskMatrix protocol."""

    def test_parameter_criterion(self, mnist_model, mnist_pool):
        crit = ParameterCoverage()
        assert crit.num_bits(mnist_model) == mnist_model.num_parameters()
        matrix = crit.mask_matrix(mnist_model, mnist_pool)
        assert isinstance(matrix, MaskMatrix)
        assert matrix.shape == (len(mnist_pool), mnist_model.num_parameters())
        expected = packed_activation_masks(
            mnist_model, mnist_pool, default_criterion_for(mnist_model)
        )
        assert matrix == expected
        tracker = crit.tracker(mnist_model)
        assert isinstance(tracker, CoverageTracker)

    def test_neuron_criterion(self, mnist_model, mnist_pool):
        crit = NeuronCoverage(threshold=0.1)
        assert crit.num_bits(mnist_model) == count_neurons(mnist_model)
        matrix = crit.mask_matrix(mnist_model, mnist_pool)
        np.testing.assert_array_equal(
            matrix.dense(), neuron_activation_masks(mnist_model, mnist_pool, 0.1)
        )
        assert crit.tracker(mnist_model).threshold == 0.1

    def test_greedy_runs_on_any_criterion(self, mnist_model, mnist_pool):
        # the generic loop: criterion → matrix → tracker, no metric-specific code
        for crit in (ParameterCoverage(), NeuronCoverage()):
            matrix = crit.mask_matrix(mnist_model, mnist_pool[:6])
            tracker = crit.tracker(mnist_model)
            available = np.ones(len(matrix), dtype=bool)
            for _ in range(3):
                best, _ = matrix.best_candidate(tracker.covered_map, available)
                tracker.add_mask(matrix.row(best))
                available[best] = False
            assert tracker.num_tests == 3
            assert 0.0 < tracker.coverage <= 1.0


class TestValidationPackageV2:
    """Packed masks in the release package, with v1-compatible loading."""

    @pytest.fixture(scope="class")
    def package(self, mnist_model, mnist_pool):
        vendor = IPVendor(mnist_model)
        return vendor.build_package(mnist_pool[:5])

    def test_build_attaches_packed_masks(self, package, mnist_model):
        assert package.coverage_masks is not None
        assert len(package.coverage_masks) == 5
        assert package.coverage_masks.nbits == mnist_model.num_parameters()
        assert package.coverage_fraction() == pytest.approx(
            package.metadata["validation_coverage"]
        )

    def test_masks_match_direct_computation(self, package, mnist_model):
        expected = packed_activation_masks(mnist_model, package.tests)
        assert package.coverage_masks == expected

    def test_save_load_round_trip(self, package, tmp_path):
        path = package.save(tmp_path / "pkg.npz")
        loaded = ValidationPackage.load(path)
        assert loaded.coverage_masks == package.coverage_masks
        np.testing.assert_array_equal(loaded.tests, package.tests)
        assert loaded.coverage_fraction() == pytest.approx(
            package.coverage_fraction()
        )

    def test_subset_slices_masks(self, package):
        subset = package.subset(2)
        assert len(subset.coverage_masks) == 2
        assert subset.coverage_masks.words.shape[0] == 2
        np.testing.assert_array_equal(
            subset.coverage_masks.dense(), package.coverage_masks.dense()[:2]
        )

    def test_opt_out(self, mnist_model, mnist_pool):
        pkg = IPVendor(mnist_model).build_package(
            mnist_pool[:3], include_coverage_masks=False
        )
        assert pkg.coverage_masks is None
        assert pkg.coverage_fraction() is None

    def _write_v1(self, path, package, extra_arrays=None):
        """Write the pre-format-version on-disk layout (no ``format`` key).

        v1 digests covered tests + outputs only — never masks.
        """
        from repro.validation.package import _digest_arrays

        meta = {
            "output_atol": package.output_atol,
            "digest": _digest_arrays(package.tests, package.expected_outputs),
            "metadata": package.metadata,
        }
        arrays = {
            "tests": package.tests,
            "expected_outputs": package.expected_outputs,
            "expected_labels": package.expected_labels,
            "__meta__": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
        }
        arrays.update(extra_arrays or {})
        np.savez(path, **arrays)

    def test_loads_v1_package_without_masks(self, package, tmp_path):
        path = tmp_path / "v1.npz"
        self._write_v1(path, package)
        loaded = ValidationPackage.load(path)  # digest verified by default
        assert loaded.coverage_masks is None
        np.testing.assert_array_equal(loaded.tests, package.tests)

    def test_loads_v1_package_with_legacy_dense_masks(self, package, tmp_path):
        path = tmp_path / "v1_dense.npz"
        dense = package.coverage_masks.dense()
        self._write_v1(path, package, {"coverage_masks": dense})
        loaded = ValidationPackage.load(path)
        assert loaded.coverage_masks == package.coverage_masks

    def test_tampered_masks_fail_integrity_check(self, package, tmp_path):
        # the v2 digest spans the packed masks: rewriting the coverage
        # record in transit must not pass verification
        path = package.save(tmp_path / "tampered.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        words = arrays["coverage_words"].copy()
        words[0, 0] ^= np.uint64(1)
        arrays["coverage_words"] = words
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="integrity"):
            ValidationPackage.load(path)
        assert ValidationPackage.load(path, verify_digest=False) is not None

    def test_rejects_future_format(self, package, tmp_path):
        path = package.save(tmp_path / "future.npz")
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
        meta["format"] = FORMAT_VERSION + 1
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            ValidationPackage.load(path)

    def test_mask_row_count_validated(self, package):
        with pytest.raises(ValueError, match="coverage_masks"):
            ValidationPackage(
                tests=package.tests,
                expected_outputs=package.expected_outputs,
                coverage_masks=package.coverage_masks.take([0, 1]),
            )
