"""ParallelBackend equivalence and transport behaviour.

Property-style checks that the multi-core sharded backend reproduces the
single-process ``NumpyBackend`` — and therefore the per-sample reference —
to 1e-8 on both Table-I architectures, plus the transport-level behaviour
that makes it usable: model publication by parameter digest, merged cache
statistics under sharding, shard balancing and resource cleanup.

A single two-worker backend (module-scoped fixture) serves every test: the
worker pool is the expensive part, and sharing it also exercises the
"one backend, many engines" usage the docs recommend.
"""

import numpy as np
import pytest

from repro.coverage.parameter_coverage import (
    activation_mask,
    mean_validation_coverage_reference,
)
from repro.engine import (
    CacheStats,
    Engine,
    NumpyBackend,
    ParallelBackend,
    available_backends,
    get_backend,
)
from repro.models.zoo import cifar_cnn, mnist_cnn, small_mlp

TOLERANCE = 1e-8


def _pool(model, size, seed):
    rng = np.random.default_rng(seed)
    return rng.random((size, *model.input_shape))


@pytest.fixture(scope="module")
def backend():
    """One persistent two-worker backend shared by the whole module."""
    backend = ParallelBackend(workers=2)
    yield backend
    backend.close()


@pytest.fixture(scope="module", params=["mnist", "cifar"])
def arch(request):
    """Both Table-I architectures (width-scaled for test speed)."""
    if request.param == "mnist":
        return mnist_cnn(width_multiplier=0.125, input_size=12, rng=0)
    return cifar_cnn(width_multiplier=0.0625, input_size=12, rng=1)


class TestEquivalence:
    def test_forward_matches_numpy_backend(self, arch, backend):
        images = _pool(arch, 7, seed=10)
        parallel = Engine(arch, backend=backend, cache=False).forward(images)
        reference = Engine(arch, cache=False).forward(images)
        assert np.abs(parallel - reference).max() <= TOLERANCE

    def test_output_gradients_match_numpy_backend(self, arch, backend):
        images = _pool(arch, 6, seed=11)
        for scal in ("sum", "max"):
            parallel = Engine(arch, backend=backend, cache=False).output_gradients(
                images, scal
            )
            reference = Engine(arch, cache=False).output_gradients(images, scal)
            assert np.abs(parallel - reference).max() <= TOLERANCE

    def test_masks_match_per_sample_reference(self, arch, backend):
        images = _pool(arch, 6, seed=12)
        engine = Engine(arch, backend=backend, cache=False)
        masks = engine.activation_masks(images)
        singles = np.stack(
            [activation_mask(arch, images[i]) for i in range(len(images))]
        )
        np.testing.assert_array_equal(masks, singles)

    def test_coverage_matches_reference(self, arch, backend):
        images = _pool(arch, 8, seed=13)
        engine = Engine(arch, backend=backend, cache=False)
        batched = engine.mean_validation_coverage(images)
        reference = mean_validation_coverage_reference(arch, images)
        assert abs(batched - reference) <= TOLERANCE

    def test_neuron_masks_match_numpy_backend(self, arch, backend):
        images = _pool(arch, 5, seed=14)
        parallel = Engine(arch, backend=backend, cache=False).neuron_masks(images)
        reference = Engine(arch, cache=False).neuron_masks(images)
        np.testing.assert_array_equal(parallel, reference)

    def test_input_gradients_match_numpy_backend(self, arch, backend):
        images = _pool(arch, 5, seed=15)
        targets = np.arange(5) % arch.num_classes
        value_p, grad_p = Engine(arch, backend=backend, cache=False).input_gradients(
            images, targets
        )
        value_n, grad_n = Engine(arch, cache=False).input_gradients(images, targets)
        assert value_p == pytest.approx(value_n, abs=TOLERANCE)
        assert np.abs(grad_p - grad_n).max() <= TOLERANCE

    def test_loss_parameter_gradients_match_numpy_backend(self, arch, backend):
        images = _pool(arch, 5, seed=16)
        targets = np.arange(5) % arch.num_classes
        for loss in ("cross_entropy", "negative_logit"):
            value_p, grad_p = Engine(
                arch, backend=backend, cache=False
            ).loss_parameter_gradients(images, targets, loss)
            value_n, grad_n = Engine(arch, cache=False).loss_parameter_gradients(
                images, targets, loss
            )
            assert value_p == pytest.approx(value_n, abs=TOLERANCE)
            assert np.abs(grad_p - grad_n).max() <= TOLERANCE

    def test_perturbed_model_yields_fresh_results(self, backend):
        """Digest-keyed publication can never serve stale weights."""
        model = small_mlp(rng=2)
        images = _pool(model, 4, seed=17)
        engine = Engine(model, backend=backend, cache=False)
        before = engine.output_gradients(images).copy()
        model.parameter_view().add_scalar(0, 0.25)
        after = engine.output_gradients(images)
        assert not np.array_equal(before, after)
        singles = np.stack(
            [model.output_gradients(images[i]) for i in range(len(images))]
        )
        assert np.abs(after - singles).max() <= TOLERANCE


class TestTransport:
    def test_registered(self):
        assert "parallel" in available_backends()
        assert isinstance(get_backend("parallel"), ParallelBackend)

    def test_parallelism_scales_engine_chunks(self, backend):
        model = small_mlp(rng=3)
        assert backend.parallelism == 2
        engine = Engine(model, backend=backend, batch_size=4)
        chunks = list(engine._chunks(20))
        # chunk span = batch_size * workers so each worker sees batch_size
        assert chunks[0] == slice(0, 8)
        assert len(chunks) == 3

    def test_shard_bounds_cover_and_balance(self):
        for n in (1, 2, 3, 7, 64):
            bounds = ParallelBackend._shard_bounds(n, 2)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            assert all(b > a for a, b in bounds)
            # contiguous, no overlap
            for (_, b1), (a2, _) in zip(bounds, bounds[1:]):
                assert b1 == a2
            assert len(bounds) == min(2, n)

    def test_batch_smaller_than_worker_count(self, backend):
        model = small_mlp(rng=4)
        image = _pool(model, 1, seed=18)
        logits = Engine(model, backend=backend, cache=False).forward(image)
        np.testing.assert_allclose(logits, model.forward(image), atol=TOLERANCE)

    def test_publication_reuse_is_counted(self):
        backend = ParallelBackend(workers=2)
        try:
            model = small_mlp(rng=5)
            images = _pool(model, 4, seed=19)
            engine = Engine(model, backend=backend, cache=False)
            engine.forward(images)
            assert backend.cache_stats.misses == 1  # weights shipped once
            engine.output_gradients(images)
            engine.neuron_masks(images)
            assert backend.cache_stats.misses == 1  # ...and never again
            assert backend.cache_stats.hits >= 2
            # perturbation -> exactly one re-publication
            model.parameter_view().add_scalar(0, 0.5)
            engine.forward(images)
            assert backend.cache_stats.misses == 2
        finally:
            backend.close()

    def test_engine_stats_merge_memo_and_transport(self):
        backend = ParallelBackend(workers=2)
        try:
            model = small_mlp(rng=6)
            images = _pool(model, 6, seed=20)
            engine = Engine(model, backend=backend, batch_size=2)
            engine.mean_validation_coverage(images)
            first = engine.stats
            # transport misses (weights shipped) appear in the merged view
            assert first.misses >= backend.cache_stats.misses >= 1
            engine.mean_validation_coverage(images)
            second = engine.stats
            # the revisit is a memo hit AND ships nothing new
            assert second.hits > first.hits
            assert backend.cache_stats.misses == 1
            # merging never loses the memo-only counters
            memo_only = engine._cache.stats
            assert second.hits == memo_only.hits + backend.cache_stats.hits
            assert second.misses == memo_only.misses + backend.cache_stats.misses
        finally:
            backend.close()

    def test_cache_stats_merge_semantics(self):
        a = CacheStats(hits=2, misses=1, evictions=0)
        b = CacheStats(hits=3, misses=4, evictions=5)
        merged = a + b
        assert (merged.hits, merged.misses, merged.evictions) == (5, 5, 5)
        # inputs untouched
        assert (a.hits, b.hits) == (2, 3)
        assert a.merge(b, b).hits == 8

    def test_close_is_idempotent_and_releases_publications(self):
        backend = ParallelBackend(workers=1)
        model = small_mlp(rng=7)
        images = _pool(model, 3, seed=21)
        Engine(model, backend=backend, cache=False).forward(images)
        assert len(backend._resources["published"]) == 1
        backend.close()
        assert backend._resources["pool"] is None
        assert len(backend._resources["published"]) == 0
        backend.close()  # second close is a no-op
        # a closed backend restarts lazily on next use
        Engine(model, backend=backend, cache=False).forward(images)
        backend.close()

    def test_publication_lru_eviction(self):
        backend = ParallelBackend(workers=1, max_published=2)
        try:
            model = small_mlp(rng=8)
            images = _pool(model, 2, seed=22)
            engine = Engine(model, backend=backend, cache=False)
            for step in range(3):
                engine.forward(images)
                model.parameter_view().add_scalar(0, 1.0)
            assert backend.cache_stats.misses == 3
            assert backend.cache_stats.evictions == 1
            assert len(backend._resources["published"]) == 2
        finally:
            backend.close()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ParallelBackend(workers=0)
        with pytest.raises(ValueError):
            ParallelBackend(max_published=0)

    def test_publishing_a_warm_model_ships_no_caches(self, backend):
        """Regression: a model whose layers hold forward caches (it was just
        trained or queried in-process) must publish cleanly and lean."""
        import pickle

        model = mnist_cnn(width_multiplier=0.125, input_size=12, rng=9)
        images = _pool(model, 6, seed=23)
        model.forward(images)  # fill every layer cache, lease workspaces
        payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        cold = pickle.dumps(
            mnist_cnn(width_multiplier=0.125, input_size=12, rng=9),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        assert len(payload) < len(cold) * 1.1  # caches stripped from the pickle
        engine = Engine(model, backend=backend, cache=False)
        batched = engine.output_gradients(images)
        singles = np.stack(
            [model.output_gradients(images[i]) for i in range(len(images))]
        )
        assert np.abs(batched - singles).max() <= TOLERANCE
