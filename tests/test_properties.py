"""Property-based tests (hypothesis) for core numeric building blocks and
coverage invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.coverage import ActivationCriterion, CoverageTracker
from repro.nn.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers import col2im, im2col
from repro.nn.losses import SoftmaxCrossEntropy, one_hot
from repro.nn.tensor import Parameter, ParameterView

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6), elements=finite_floats)
)
def test_softmax_rows_are_probability_distributions(x):
    y = Softmax().forward(x)
    assert np.all(y >= 0.0)
    np.testing.assert_allclose(y.sum(axis=-1), np.ones(x.shape[0]), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8), elements=finite_floats)
)
def test_relu_is_idempotent_and_nonnegative(x):
    relu = ReLU()
    y = relu.forward(x)
    assert np.all(y >= 0.0)
    np.testing.assert_array_equal(relu.forward(y), y)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=8), elements=finite_floats)
)
def test_tanh_and_sigmoid_ranges(x):
    assert np.all(np.abs(Tanh().forward(x)) <= 1.0)
    s = Sigmoid().forward(x)
    assert np.all((s >= 0.0) & (s <= 1.0))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(3, 8),
    kernel=st.integers(1, 3),
    padding=st.integers(0, 2),
)
def test_im2col_col2im_adjointness(n, c, size, kernel, padding):
    """<im2col(x), y> == <x, col2im(y)> — the two operators are adjoint,
    which is exactly the property the convolution backward pass relies on."""
    rng = np.random.default_rng(42)
    x = rng.normal(size=(n, c, size, size))
    cols, oh, ow = im2col(x, kernel, kernel, stride=1, padding=padding)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, kernel, kernel, stride=1, padding=padding)))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    labels=st.lists(st.integers(0, 6), min_size=1, max_size=12),
)
def test_one_hot_rows_sum_to_one(labels):
    labels = np.array(labels)
    out = one_hot(labels, 7)
    np.testing.assert_array_equal(out.sum(axis=1), np.ones(len(labels)))
    np.testing.assert_array_equal(np.argmax(out, axis=1), labels)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(2, 5)),
        elements=st.floats(-50, 50, allow_nan=False),
    ),
)
def test_cross_entropy_is_nonnegative_and_grad_rows_sum_to_zero(logits):
    n, k = logits.shape
    targets = np.arange(n) % k
    loss, grad = SoftmaxCrossEntropy().value_and_grad(logits, targets)
    assert loss >= -1e-12
    np.testing.assert_allclose(grad.sum(axis=1), np.zeros(n), atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=30),
    epsilon=st.floats(0, 1),
)
def test_activation_criterion_threshold_monotonicity(values, epsilon):
    grads = np.array(values)
    strict = ActivationCriterion(epsilon=epsilon)
    loose = ActivationCriterion(epsilon=0.0)
    assert strict.activated(grads).sum() <= loose.activated(grads).sum()


@settings(max_examples=30, deadline=None)
@given(
    shapes=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=4
    ),
    data=st.data(),
)
def test_parameter_view_flat_round_trip(shapes, data):
    params = [
        Parameter(np.zeros(shape), name=f"p{i}") for i, shape in enumerate(shapes)
    ]
    view = ParameterView(params)
    flat = np.array(
        data.draw(
            st.lists(
                finite_floats, min_size=view.total_size, max_size=view.total_size
            )
        )
    )
    view.set_flat_values(flat)
    np.testing.assert_allclose(view.flat_values(), flat)
    # locate() round-trips every index to the right scalar
    for idx in range(view.total_size):
        assert view.get_scalar(idx) == flat[idx]


class _MaskModel:
    """Stand-in exposing just enough of the Sequential API for CoverageTracker."""

    def __init__(self, n):
        self._n = n
        self.layers = []

    def num_parameters(self):
        return self._n


@settings(max_examples=40, deadline=None)
@given(
    n_params=st.integers(4, 64),
    n_masks=st.integers(1, 8),
    data=st.data(),
)
def test_coverage_tracker_union_invariants(n_params, n_masks, data):
    """Union coverage equals the OR of all masks; marginal gains sum to coverage."""
    from repro.coverage.activation import ActivationCriterion

    from repro.coverage.bitmap import CoverageMap

    tracker = CoverageTracker.__new__(CoverageTracker)
    tracker._model = _MaskModel(n_params)
    tracker.criterion = ActivationCriterion()
    tracker._total = n_params
    tracker._covered = CoverageMap(n_params)
    tracker._num_tests = 0

    union = np.zeros(n_params, dtype=bool)
    total_gain = 0.0
    for _ in range(n_masks):
        mask = np.array(
            data.draw(st.lists(st.booleans(), min_size=n_params, max_size=n_params))
        )
        gain = tracker.add_mask(mask)
        union |= mask
        total_gain += gain
        assert 0.0 <= gain <= 1.0
    assert tracker.num_covered == union.sum()
    assert tracker.coverage == pytest.approx(total_gain)
    assert tracker.coverage == pytest.approx(union.mean())
