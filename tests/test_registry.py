"""Tests of the cross-subsystem plugin registry (repro.registry)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.registry import (
    NAMESPACES,
    Registry,
    RegistryEntry,
    registry,
)


# ---------------------------------------------------------------------------
# core Registry behaviour (on private instances — the global one is shared)
# ---------------------------------------------------------------------------


class TestRegistryCore:
    def test_namespaces_present(self):
        fresh = Registry()
        assert fresh.namespaces() == list(NAMESPACES)

    def test_register_and_resolve(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda x: x + 1, summary="inc")
        assert fresh.names("widgets") == ["a"]
        assert fresh.get("widgets", "a")(1) == 2
        assert fresh.create("widgets", "a", 2) == 3
        entry = fresh.entry("widgets", "a")
        assert isinstance(entry, RegistryEntry)
        assert entry.summary == "inc"

    def test_register_as_decorator(self):
        fresh = Registry(("widgets",))

        @fresh.register("widgets", "b", knobs={"k": "field"})
        def build(k=0):
            return k * 2

        assert build(k=3) == 6  # the decorator returns the factory unchanged
        assert fresh.knobs("widgets", "b") == {"k": "field"}

    def test_reregistration_replaces(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda: "old")
        fresh.register("widgets", "a", lambda: "new")
        assert fresh.create("widgets", "a") == "new"

    def test_unregister(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda: None)
        fresh.unregister("widgets", "a")
        assert fresh.names("widgets") == []
        with pytest.raises(ValueError, match="no 'widgets' entry"):
            fresh.unregister("widgets", "a")

    def test_unknown_name_lists_choices(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda: None)
        with pytest.raises(ValueError, match=r"choose from \['a'\]"):
            fresh.get("widgets", "zzz")

    def test_unknown_namespace_rejected(self):
        fresh = Registry(("widgets",))
        with pytest.raises(ValueError, match="unknown registry namespace"):
            fresh.register("gadgets", "a", lambda: None)
        with pytest.raises(ValueError, match="unknown registry namespace"):
            fresh.names("gadgets")

    def test_add_namespace(self):
        fresh = Registry(("widgets",))
        fresh.add_namespace("gadgets")
        fresh.register("gadgets", "g", lambda: 1)
        assert fresh.names("gadgets") == ["g"]

    def test_knobs_are_copies(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda: None, knobs={"k": "f"})
        fresh.knobs("widgets", "a")["k"] = "mutated"
        assert fresh.knobs("widgets", "a") == {"k": "f"}

    def test_metadata_is_separate_from_knobs(self):
        fresh = Registry(("widgets",))
        fresh.register(
            "widgets", "a", lambda: None, knobs={"k": "f"}, metadata={"note": 1}
        )
        assert fresh.metadata("widgets", "a") == {"note": 1}
        assert fresh.knobs("widgets", "a") == {"k": "f"}
        assert fresh.describe()["widgets"][0]["metadata"] == {"note": 1}

    def test_failed_builtin_import_is_not_latched(self, monkeypatch):
        import repro.registry as registry_module

        fresh = Registry(("widgets",))
        monkeypatch.setitem(
            registry_module._BUILTIN_MODULES, "widgets", ("no.such.module",)
        )
        with pytest.raises(ModuleNotFoundError):
            fresh.names("widgets")
        # the failure is not latched: the namespace is retried, not reported
        # as a misleading empty namespace
        with pytest.raises(ModuleNotFoundError):
            fresh.names("widgets")
        monkeypatch.setitem(registry_module._BUILTIN_MODULES, "widgets", ())
        assert fresh.names("widgets") == []  # recovered once the import works

    def test_describe_shape(self):
        fresh = Registry(("widgets",))
        fresh.register("widgets", "a", lambda: None, summary="s")
        doc = fresh.describe()
        assert list(doc) == ["widgets"]
        assert doc["widgets"][0]["name"] == "a"
        assert doc["widgets"][0]["summary"] == "s"

    def test_entry_point_discovery_runs_once(self):
        fresh = Registry(("widgets",))
        # no repro.plugins entry points are installed in the test env, so
        # discovery is a 0-hook no-op — and stays one on repeat calls
        assert fresh.discover_entry_points() == 0
        assert fresh.discover_entry_points() == 0


# ---------------------------------------------------------------------------
# builtin namespaces of the global registry
# ---------------------------------------------------------------------------


class TestBuiltinEntries:
    def test_strategies(self):
        assert set(registry.names("strategies")) >= {
            "combined",
            "selection",
            "gradient",
            "neuron",
            "random",
        }

    def test_attacks(self):
        assert set(registry.names("attacks")) >= {"sba", "gda", "random", "bitflip"}

    def test_criteria(self):
        assert set(registry.names("criteria")) >= {"default", "exact", "eps"}

    def test_backends(self):
        assert set(registry.names("backends")) >= {"numpy", "parallel"}

    def test_datasets(self):
        assert set(registry.names("datasets")) >= {
            "mnist",
            "cifar",
            "digits",
            "noise",
            "imagenet",
        }

    def test_models(self):
        assert set(registry.names("models")) >= {
            "mnist",
            "cifar",
            "small_cnn",
            "small_mlp",
        }

    def test_dataset_recipes(self):
        mnist = registry.metadata("datasets", "mnist")
        assert mnist["model"] == "mnist" and mnist["epochs"] == 8
        cifar = registry.metadata("datasets", "cifar")
        assert cifar["model"] == "cifar" and cifar["width_scale"] == 0.5
        # recipes live in metadata, never in the factory-kwarg knobs
        assert registry.knobs("datasets", "mnist") == {}
        # raw generators carry no recipe
        assert "model" not in registry.metadata("datasets", "digits")

    def test_attack_knob_declarations(self):
        assert registry.knobs("attacks", "sba") == {"magnitude": "sba_magnitude"}
        assert registry.knobs("attacks", "gda") == {"num_parameters": "gda_parameters"}
        assert registry.knobs("attacks", "random") == {
            "num_parameters": "random_parameters",
            "relative_std": "random_relative_std",
        }
        assert registry.knobs("attacks", "bitflip") == {}


# ---------------------------------------------------------------------------
# consumers resolve through the registry with unchanged behaviour
# ---------------------------------------------------------------------------


class TestRegistryConsumers:
    def test_attack_factories_build_the_same_attacks(self):
        from repro.attacks import (
            BitFlipAttack,
            GradientDescentAttack,
            RandomPerturbation,
            SingleBiasAttack,
        )
        from repro.validation.detection import default_attack_factories

        reference = np.random.default_rng(0).random((4, 1, 8, 8))
        factories = default_attack_factories(
            reference,
            sba_magnitude=7.5,
            gda_parameters=9,
            random_parameters=3,
            random_relative_std=1.5,
        )
        assert list(factories) == ["sba", "gda", "random", "bitflip"]
        rng = np.random.default_rng(1)
        sba = factories["sba"](rng)
        assert isinstance(sba, SingleBiasAttack) and sba.magnitude == 7.5
        gda = factories["gda"](rng)
        assert isinstance(gda, GradientDescentAttack) and gda.num_parameters == 9
        rnd = factories["random"](rng)
        assert isinstance(rnd, RandomPerturbation)
        assert rnd.num_parameters == 3 and rnd.relative_std == 1.5
        assert isinstance(factories["bitflip"](rng), BitFlipAttack)

    def test_third_party_attack_becomes_available(self):
        from repro.attacks.random_noise import RandomPerturbation
        from repro.validation.detection import (
            available_attacks,
            default_attack_factories,
        )

        @registry.register(
            "attacks", "test-noise", knobs={"num_parameters": "test_noise_parameters"}
        )
        def _noise(reference_inputs, rng=None, num_parameters=2):
            return RandomPerturbation(num_parameters=num_parameters, rng=rng)

        try:
            assert "test-noise" in available_attacks()
            factories = default_attack_factories(
                np.ones((2, 1, 4, 4)), test_noise_parameters=5
            )
            attack = factories["test-noise"](np.random.default_rng(0))
            assert attack.num_parameters == 5
        finally:
            registry.unregister("attacks", "test-noise")

    def test_criterion_resolution_through_registry(self, trained_mlp):
        from repro.coverage.activation import ActivationCriterion, resolve_criterion

        assert resolve_criterion("exact", trained_mlp).epsilon == 0.0
        crit = resolve_criterion("eps:1e-3@max", trained_mlp)
        assert crit.epsilon == 1e-3 and crit.scalarization == "max"

        @registry.register("criteria", "test-fixed")
        def _fixed(model, argument, scalarization):
            return ActivationCriterion(epsilon=0.5, scalarization=scalarization)

        try:
            resolved = resolve_criterion("test-fixed@predicted", trained_mlp)
            assert resolved.epsilon == 0.5 and resolved.scalarization == "predicted"
        finally:
            registry.unregister("criteria", "test-fixed")

    def test_prepare_experiment_rejects_recipeless_dataset(self):
        from repro.analysis.sweep import prepare_experiment

        with pytest.raises(ValueError, match="no experiment recipe"):
            prepare_experiment("digits", train_size=4, test_size=2)

    def test_prepare_experiment_rejects_unknown_dataset(self):
        from repro.analysis.sweep import prepare_experiment

        with pytest.raises(ValueError, match="unknown dataset"):
            prepare_experiment("not-a-dataset")

    def test_preparable_datasets(self):
        from repro.analysis.sweep import preparable_datasets

        assert preparable_datasets() == ["cifar", "mnist"]

    def test_build_model_through_registry(self):
        from repro.models.zoo import build_model

        model = build_model("small_mlp", rng=0)
        assert model.name == "small_mlp"
        with pytest.raises(ValueError, match="unknown model"):
            build_model("not-a-model")

    def test_spec_validation_uses_registry(self):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            models=("mnist",), strategies=("random",), budgets=(2,), trials=1
        )
        spec.validate()
        with pytest.raises(ValueError, match="unknown strategies"):
            CampaignSpec(strategies=("psychic",)).validate()
        with pytest.raises(ValueError, match="unknown attacks"):
            CampaignSpec(attacks=("emp",)).validate()
        with pytest.raises(ValueError, match="unknown models"):
            CampaignSpec(models=("svhn",)).validate()
