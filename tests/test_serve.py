"""Tests for repro.serve: admission, coalescing, the HTTP front end, drain.

The acceptance gate of the serving layer lives here: N concurrent
validates against one parameter digest must produce exactly one stacked
engine dispatch, with outcomes byte-identical to N serial in-process
calls; quotas must refuse with 429 semantics; SIGTERM must drain
gracefully.

pytest-asyncio is not a dependency — async tests run their event loop via
``asyncio.run`` inside plain sync test functions.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import ReleaseRequest, RunConfig, Session, ValidateRequest
from repro.engine import Engine
from repro.serve import (
    AdmissionController,
    AsyncClient,
    BatchingCoalescer,
    HttpClient,
    HttpServer,
    QuotaExceeded,
    RequestTimeout,
    SERVE_BATCH_SIZE,
    ServeConfig,
    ServiceDraining,
    TokenBucket,
    ValidationService,
)
from repro.validation import validate_ip

#: the shared tiny experiment (matches tests/test_api.py so the prepared
#: model is identical across the two suites)
TINY = dict(
    train_size=30,
    test_size=12,
    epochs=1,
    width_multiplier=0.1,
    num_tests=3,
    candidate_pool=10,
    gradient_updates=3,
)


@pytest.fixture(scope="module")
def released():
    with Session() as session:
        yield session.release(ReleaseRequest(dataset="mnist", **TINY))


@pytest.fixture(scope="module")
def tampered(released):
    from repro.attacks import SingleBiasAttack

    return SingleBiasAttack(rng=3).apply(released.model).model


@pytest.fixture(scope="module")
def artifacts(released, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-artifacts")
    return released.save(directory)


def _service(**overrides) -> ValidationService:
    overrides.setdefault("coalesce_window_s", 0.02)
    return ValidationService(ServeConfig(**overrides))


# ---------------------------------------------------------------------------
# ServeConfig
# ---------------------------------------------------------------------------


class TestServeConfig:
    def test_defaults_validate(self):
        ServeConfig().validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ServeConfig fields"):
            ServeConfig.from_dict({"turbo": True})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("port", -1),
            ("max_pending", 0),
            ("tenant_queue_limit", 0),
            ("tenant_rate", -1.0),
            ("tenant_burst", 0),
            ("coalesce_window_s", -0.1),
            ("max_stacked_models", 0),
            ("executor_workers", 0),
            ("request_timeout_s", 0.0),
            ("read_timeout_s", 0.0),
            ("drain_timeout_s", 0.0),
            ("artifacts_root", ""),
        ],
    )
    def test_validation_errors(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value}).validate()

    def test_loads_from_toml(self, tmp_path):
        path = tmp_path / "serve.toml"
        path.write_text(
            "[serve]\nport = 9000\ncoalesce_window_s = 0.5\n", encoding="utf-8"
        )
        config = ServeConfig.load(path)
        assert config.port == 9000 and config.coalesce_window_s == 0.5


# ---------------------------------------------------------------------------
# quotas
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.take() and bucket.take()
        assert not bucket.take()  # bucket dry
        assert bucket.seconds_until_token() == pytest.approx(1.0)
        clock.now = 1.0
        assert bucket.take()

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=FakeClock())
        assert all(bucket.take() for _ in range(100))
        assert bucket.seconds_until_token() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.now = 60.0  # a long idle period must not bank extra tokens
        assert bucket.take() and bucket.take()
        assert not bucket.take()


class TestAdmissionController:
    def test_global_cap(self):
        controller = AdmissionController(max_pending=2, tenant_queue_limit=5)
        controller.admit("a")
        controller.admit("b")
        with pytest.raises(QuotaExceeded, match="at capacity"):
            controller.admit("c")
        controller.release("a")
        controller.admit("c")  # capacity freed

    def test_per_tenant_cap_isolates_tenants(self):
        controller = AdmissionController(max_pending=10, tenant_queue_limit=1)
        controller.admit("noisy")
        with pytest.raises(QuotaExceeded, match="in flight"):
            controller.admit("noisy")
        controller.admit("quiet")  # unaffected by the noisy tenant

    def test_rate_limit_sets_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(
            tenant_rate=0.5, tenant_burst=1, retry_after_s=0.1, clock=clock
        )
        controller.admit("a")
        controller.release("a")
        with pytest.raises(QuotaExceeded) as excinfo:
            controller.admit("a")
        assert excinfo.value.retry_after_s == pytest.approx(2.0)

    def test_snapshot_counts(self):
        controller = AdmissionController(max_pending=1)
        controller.admit("a")
        with pytest.raises(QuotaExceeded):
            controller.admit("b")
        snapshot = controller.snapshot()
        assert snapshot["pending"] == 1
        assert snapshot["tenants"]["a"] == {
            "admitted": 1,
            "rejected": 0,
            "in_flight": 1,
        }
        assert snapshot["tenants"]["b"]["rejected"] == 1


# ---------------------------------------------------------------------------
# the coalescer, against a fake dispatch
# ---------------------------------------------------------------------------


class TestBatchingCoalescer:
    class FakePackage:
        """Stands in for a ValidationPackage; the coalescer never inspects it."""

    def _coalescer(self, dispatched, **kwargs):
        async def dispatch(package, models):
            dispatched.append(list(models))
            return np.arange(len(models), dtype=float).reshape(-1, 1, 1)

        kwargs.setdefault("window_s", 0.01)
        return BatchingCoalescer(dispatch, **kwargs)

    def test_same_digest_requests_share_one_dispatch(self):
        dispatched = []
        coalescer = self._coalescer(dispatched)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                *[coalescer.submit("fp", package, "d0", "model") for _ in range(8)]
            )

        results = asyncio.run(main())
        assert len(dispatched) == 1 and dispatched[0] == ["model"]
        assert all(float(r[0, 0]) == 0.0 for r in results)
        assert coalescer.stats.dispatches == 1
        assert coalescer.stats.deduped == 7
        assert coalescer.stats.hit_rate == pytest.approx(7 / 8)

    def test_distinct_digests_stack_into_one_dispatch(self):
        dispatched = []
        coalescer = self._coalescer(dispatched)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                coalescer.submit("fp", package, "d0", "m0"),
                coalescer.submit("fp", package, "d1", "m1"),
                coalescer.submit("fp", package, "d2", "m2"),
            )

        results = asyncio.run(main())
        assert len(dispatched) == 1 and dispatched[0] == ["m0", "m1", "m2"]
        # each waiter gets exactly its own slice
        assert [float(r[0, 0]) for r in results] == [0.0, 1.0, 2.0]
        assert coalescer.stats.max_stacked == 3

    def test_distinct_packages_do_not_merge(self):
        dispatched = []
        coalescer = self._coalescer(dispatched)

        async def main():
            await asyncio.gather(
                coalescer.submit("fp-a", self.FakePackage(), "d0", "m0"),
                coalescer.submit("fp-b", self.FakePackage(), "d0", "m1"),
            )

        asyncio.run(main())
        assert len(dispatched) == 2

    def test_max_models_flushes_early(self):
        dispatched = []
        coalescer = self._coalescer(dispatched, max_models=2, window_s=5.0)
        package = self.FakePackage()

        async def main():
            # window is far too long to matter: the cap must flush instead
            await asyncio.wait_for(
                asyncio.gather(
                    coalescer.submit("fp", package, "d0", "m0"),
                    coalescer.submit("fp", package, "d1", "m1"),
                ),
                timeout=2.0,
            )

        asyncio.run(main())
        assert len(dispatched) == 1 and len(dispatched[0]) == 2

    def test_disabled_dispatches_alone(self):
        dispatched = []
        coalescer = self._coalescer(dispatched, enabled=False)
        package = self.FakePackage()

        async def main():
            await asyncio.gather(
                *[coalescer.submit("fp", package, "d0", "m") for _ in range(4)]
            )

        asyncio.run(main())
        assert len(dispatched) == 4
        assert coalescer.stats.hit_rate == 0.0

    def test_dispatch_error_reaches_every_waiter(self):
        async def dispatch(package, models):
            raise RuntimeError("backend exploded")

        coalescer = BatchingCoalescer(dispatch, window_s=0.01)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                coalescer.submit("fp", package, "d0", "m0"),
                coalescer.submit("fp", package, "d1", "m1"),
                return_exceptions=True,
            )

        results = asyncio.run(main())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_failed_stacked_dispatch_retries_each_model_alone(self):
        """Isolation: a poisoned co-traveller must not fail the group."""
        dispatched = []

        async def dispatch(package, models):
            dispatched.append(list(models))
            if len(models) > 1:
                raise ValueError("models are not stack-compatible")
            if models == ["bad"]:
                raise RuntimeError("this model alone is broken")
            return np.zeros((1, 1, 1))

        coalescer = BatchingCoalescer(dispatch, window_s=0.01)
        package = self.FakePackage()

        async def main():
            return await asyncio.gather(
                coalescer.submit("fp", package, "d0", "good"),
                coalescer.submit("fp", package, "d1", "bad"),
                return_exceptions=True,
            )

        good, bad = asyncio.run(main())
        assert dispatched == [["good", "bad"], ["good"], ["bad"]]
        # the innocent request succeeds; only the broken model errors
        assert isinstance(good, np.ndarray)
        assert isinstance(bad, RuntimeError)
        assert coalescer.stats.fallbacks == 1
        assert coalescer.stats.coalesced == 0  # floored, never negative

    def test_late_duplicate_joins_inflight_dispatch(self):
        started = asyncio.Event()
        release = asyncio.Event()
        dispatched = []

        async def dispatch(package, models):
            dispatched.append(list(models))
            started.set()
            await release.wait()
            return np.zeros((len(models), 1, 1))

        async def main():
            coalescer = BatchingCoalescer(dispatch, window_s=0.0)
            package = self.FakePackage()
            first = asyncio.create_task(
                coalescer.submit("fp", package, "d0", "m")
            )
            await started.wait()  # the dispatch is now in flight
            second = asyncio.create_task(
                coalescer.submit("fp", package, "d0", "m")
            )
            await asyncio.sleep(0.01)
            release.set()
            await asyncio.gather(first, second)
            return coalescer.stats

        stats = asyncio.run(main())
        assert len(dispatched) == 1
        assert stats.deduped == 1


# ---------------------------------------------------------------------------
# the service: coalesced validates, byte identity, quotas, drain
# ---------------------------------------------------------------------------


class TestValidationService:
    def test_concurrent_same_digest_validates_coalesce(self, released):
        """The acceptance gate: 8 concurrent validates on one parameter
        digest produce exactly one stacked dispatch, byte-identical to the
        serial in-process path."""

        async def main():
            async with _service() as service:
                client = AsyncClient(service)
                outcomes = await asyncio.gather(
                    *[
                        client.validate(
                            {"package": released.package}, ip=released.model
                        )
                        for _ in range(8)
                    ]
                )
                return outcomes, service.coalescer.stats

        outcomes, stats = asyncio.run(main())
        assert stats.requests == 8
        assert stats.dispatches == 1
        assert stats.deduped == 7
        serial = validate_ip(released.model, released.package)
        for outcome in outcomes:
            assert outcome.passed is serial.passed
            assert outcome.mismatched_indices == serial.mismatched_indices
            # float equality, not approx: the dispatch is byte-identical
            assert outcome.max_output_deviation == serial.max_output_deviation

    def test_coalesced_outcome_bitwise_matches_serial_on_tampered(
        self, released, tampered
    ):
        async def main():
            async with _service() as service:
                client = AsyncClient(service)
                return await asyncio.gather(
                    *[
                        client.validate(
                            {"package": released.package}, ip=tampered
                        )
                        for _ in range(4)
                    ]
                )

        outcomes = asyncio.run(main())
        serial = validate_ip(tampered, released.package)
        assert serial.detected  # the attack actually perturbed outputs
        for outcome in outcomes:
            assert outcome.detected
            assert outcome.mismatched_indices == serial.mismatched_indices
            assert outcome.max_output_deviation == serial.max_output_deviation
            assert outcome.label_mismatches == serial.label_mismatches

    def test_stacked_engine_slice_is_bit_identical_to_predict(self, released, tampered):
        # the numerical foundation the coalescer stands on, pinned directly
        engine = Engine(released.model, batch_size=SERVE_BATCH_SIZE)
        stacked = engine.stacked_forward(
            [released.model, tampered], released.package.tests
        )
        np.testing.assert_array_equal(
            stacked[0], released.model.predict(released.package.tests)
        )
        np.testing.assert_array_equal(
            stacked[1], tampered.predict(released.package.tests)
        )

    def test_mixed_digests_fuse_into_one_stacked_dispatch(self, released, tampered):
        async def main():
            async with _service() as service:
                client = AsyncClient(service)
                clean, bad = await asyncio.gather(
                    client.validate({"package": released.package}, ip=released.model),
                    client.validate({"package": released.package}, ip=tampered),
                )
                return clean, bad, service.coalescer.stats

        clean, bad, stats = asyncio.run(main())
        assert clean.passed and bad.detected
        assert stats.dispatches == 1
        assert stats.max_stacked == 2

    def test_mixed_architectures_never_fuse(self, released):
        """Different architectures on one package must not share a stacked
        dispatch: a shape-tampered IP scores as tampering while the
        co-travelling intact model still validates cleanly (no group-wide
        error)."""
        from repro.nn.layers import Dense, Flatten
        from repro.nn.model import Sequential

        shape_tampered = Sequential([Flatten(), Dense(4)])
        shape_tampered.build(released.model.input_shape)

        async def main():
            async with _service() as service:
                client = AsyncClient(service)
                clean, odd = await asyncio.gather(
                    client.validate({"package": released.package}, ip=released.model),
                    client.validate({"package": released.package}, ip=shape_tampered),
                )
                return clean, odd, service.coalescer.stats

        clean, odd, stats = asyncio.run(main())
        assert clean.passed  # the innocent tenant is unaffected
        assert odd.detected  # shape change = unambiguous tampering, not 400
        assert odd.max_output_deviation == float("inf")
        assert stats.dispatches == 2 and stats.max_stacked == 1
        assert stats.fallbacks == 0  # grouping, not error recovery, split them

    def test_supplied_run_config_batch_size_is_pinned(self):
        service = ValidationService(run_config=RunConfig(batch_size=64))
        try:
            assert service.session.config.batch_size == SERVE_BATCH_SIZE
        finally:
            service.close()

    def test_uncoalesced_mode_is_byte_identical(self, released, tampered):
        async def run(coalesce: bool):
            async with _service(coalesce=coalesce) as service:
                client = AsyncClient(service)
                outcome = await client.validate(
                    {"package": released.package}, ip=tampered
                )
                return outcome, service.coalescer.stats.dispatches

        merged, _ = asyncio.run(run(True))
        alone, dispatches = asyncio.run(run(False))
        assert dispatches == 1
        assert merged.mismatched_indices == alone.mismatched_indices
        assert merged.max_output_deviation == alone.max_output_deviation

    def test_callable_ip_bypasses_coalescer(self, released):
        calls = []

        def black_box(batch):
            calls.append(batch.shape[0])
            return released.model.predict(batch)

        async def main():
            async with _service() as service:
                outcome = await service.validate(
                    {"package": released.package}, ip=black_box
                )
                return outcome, service.coalescer.stats

        outcome, stats = asyncio.run(main())
        assert outcome.passed and calls == [released.num_tests]
        assert stats.requests == 0  # opaque callables never enter the coalescer

    def test_validate_accepts_wire_envelope_with_model_path(self, artifacts):
        request = ValidateRequest(
            package=str(artifacts["package"]),
            model_path=str(artifacts["model"]),
            arch="mnist",
            width_multiplier=0.1,
        )

        async def main():
            async with _service() as service:
                return await service.validate(request.to_wire())

        assert asyncio.run(main()).passed

    def test_rate_quota_raises_with_retry_hint(self, released):
        async def main():
            async with _service(tenant_rate=0.001, tenant_burst=1) as service:
                client = AsyncClient(service, tenant="greedy")
                first = await client.validate(
                    {"package": released.package}, ip=released.model
                )
                with pytest.raises(QuotaExceeded) as excinfo:
                    await client.validate(
                        {"package": released.package}, ip=released.model
                    )
                return first, excinfo.value

        first, exc = asyncio.run(main())
        assert first.passed
        assert exc.retry_after_s > 0

    def test_request_timeout_maps_to_request_timeout_error(self, released):
        def slow_box(batch):
            time.sleep(0.4)
            return released.model.predict(batch)

        async def main():
            async with _service(request_timeout_s=0.05) as service:
                with pytest.raises(RequestTimeout):
                    await service.validate(
                        {"package": released.package}, ip=slow_box
                    )

        asyncio.run(main())

    def test_draining_service_refuses_new_requests(self, released):
        async def main():
            service = _service()
            await service.drain()
            with pytest.raises(ServiceDraining):
                await service.validate(
                    {"package": released.package}, ip=released.model
                )

        asyncio.run(main())

    def test_stats_shape(self, released):
        async def main():
            async with _service() as service:
                client = AsyncClient(service, tenant="t1")
                await client.validate(
                    {"package": released.package}, ip=released.model
                )
                return service.stats()

        stats = asyncio.run(main())
        assert stats["operations"]["validate"] == 1
        assert stats["coalescer"]["dispatches"] == 1
        assert stats["admission"]["tenants"]["t1"]["admitted"] == 1
        assert set(stats["engine"]) >= {"hits", "misses", "retries"}
        assert stats["fault_events"] == []


# ---------------------------------------------------------------------------
# the HTTP front end
# ---------------------------------------------------------------------------


class TestHttpServer:
    def _validate_request(self, artifacts) -> ValidateRequest:
        return ValidateRequest(
            package=str(artifacts["package"]),
            model_path=str(artifacts["model"]),
            arch="mnist",
            width_multiplier=0.1,
        )

    @staticmethod
    def _root(artifacts) -> str:
        """The directory holding the released artifacts (= artifacts_root)."""
        return str(Path(str(artifacts["package"])).parent)

    def test_concurrent_http_validates_coalesce(self, artifacts):
        request = self._validate_request(artifacts)

        async def main():
            service = _service(port=0, artifacts_root=self._root(artifacts))
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port, tenant="http-test")
                health = await client.healthz()
                assert health["status"] == "ok"
                results = await asyncio.gather(
                    *[client.validate(request) for _ in range(8)]
                )
                stats = await client.stats()
                return results, stats
            finally:
                await server.stop()

        results, stats = asyncio.run(main())
        assert [status for status, _ in results] == [200] * 8
        bodies = [body for _, body in results]
        assert all(body["kind"] == "outcome" for body in bodies)
        assert all(body["body"]["passed"] for body in bodies)
        assert stats["coalescer"]["dispatches"] == 1
        assert stats["coalescer"]["coalesced"] == 7
        assert stats["admission"]["tenants"]["http-test"]["admitted"] == 8

    def test_http_error_mapping(self):
        async def main():
            service = _service(port=0)
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port)
                results = {}
                results["not_found"] = await client.get("/nope")
                results["wrong_method"] = await client.post("/healthz", {})
                results["empty_body"] = await client.post("/v1/validate", None)
                results["future_version"] = await client.post(
                    "/v1/validate",
                    {"schema_version": 99, "kind": "validate", "body": {}},
                )
                results["wrong_kind"] = await client.post(
                    "/v1/validate",
                    {"schema_version": 1, "kind": "release", "body": {}},
                )
                return results
            finally:
                await server.stop()

        results = asyncio.run(main())
        assert results["not_found"][0] == 404
        assert results["wrong_method"][0] == 405
        assert results["empty_body"][0] == 400
        assert results["future_version"][0] == 400
        assert "unsupported wire schema_version" in results["future_version"][1]["error"]
        assert results["wrong_kind"][0] == 400

    def test_malformed_content_length_maps_to_400(self):
        async def main():
            service = _service(port=0)
            server = HttpServer(service)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /v1/validate HTTP/1.1\r\n"
                    b"Content-Length: abc\r\n\r\n"
                )
                await writer.drain()
                status_line = await asyncio.wait_for(reader.readline(), 5.0)
                writer.close()
                return status_line.decode("ascii", "replace")
            finally:
                await server.stop()

        status_line = asyncio.run(main())
        # a proper 400 response, not a silently dropped connection
        assert " 400 " in status_line

    def test_paths_rejected_without_artifacts_root(self, artifacts):
        """No artifacts_root configured → every client path field is 400."""
        request = self._validate_request(artifacts)

        async def main():
            service = _service(port=0)  # artifacts_root=None
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port)
                results = {}
                results["validate"] = await client.validate(request)
                results["release"] = await client.post(
                    "/v1/release", {"save_dir": "/tmp/evil"}
                )
                results["sweep"] = await client.post("/v1/sweep", {})
                return results
            finally:
                await server.stop()

        results = asyncio.run(main())
        for name, (status, body) in results.items():
            assert status == 400, name
            assert "artifacts_root" in body["error"], name

    def test_path_escaping_artifacts_root_rejected(self, artifacts):
        request = ValidateRequest(
            package="../../../etc/passwd",
            model_path="model.npz",
            arch="mnist",
            width_multiplier=0.1,
        )

        async def main():
            service = _service(port=0, artifacts_root=self._root(artifacts))
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port)
                return await client.validate(request)
            finally:
                await server.stop()

        status, body = asyncio.run(main())
        assert status == 400
        assert "escapes" in body["error"]

    def test_relative_paths_resolve_inside_artifacts_root(self, artifacts):
        request = ValidateRequest(
            package=Path(str(artifacts["package"])).name,
            model_path=Path(str(artifacts["model"])).name,
            arch="mnist",
            width_multiplier=0.1,
        )

        async def main():
            service = _service(port=0, artifacts_root=self._root(artifacts))
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port)
                return await client.validate(request)
            finally:
                await server.stop()

        status, body = asyncio.run(main())
        assert status == 200
        assert body["body"]["passed"]

    def test_idle_connection_does_not_block_stop(self):
        """Graceful shutdown must not wait on a client that never sends its
        request (the read deadline reaps it; wait_closed is bounded)."""

        async def main():
            service = _service(port=0, read_timeout_s=0.2)
            server = HttpServer(service)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                # send nothing: the handler sits in its read until the
                # deadline; stop() must still complete promptly
                await asyncio.wait_for(server.stop(), timeout=5.0)
            finally:
                writer.close()

        asyncio.run(main())

    def test_http_rate_limit_maps_to_429_with_retry_after(self, artifacts):
        request = self._validate_request(artifacts)

        async def main():
            service = _service(
                port=0,
                tenant_rate=0.001,
                tenant_burst=1,
                artifacts_root=self._root(artifacts),
            )
            server = HttpServer(service)
            host, port = await server.start()
            try:
                client = HttpClient(host, port, tenant="greedy")
                ok = await client.validate(request)
                limited = await client.validate(request)
                return ok, limited
            finally:
                await server.stop()

        ok, limited = asyncio.run(main())
        assert ok[0] == 200
        status, body = limited
        assert status == 429
        assert body["retry_after"]  # the Retry-After header round-tripped

    def test_draining_server_returns_503(self, artifacts):
        request = self._validate_request(artifacts)

        async def main():
            service = _service(port=0, artifacts_root=self._root(artifacts))
            server = HttpServer(service)
            host, port = await server.start()
            client = HttpClient(host, port)
            # stop the listener-independent service first: the socket still
            # answers, but admission refuses
            await service.drain()
            status, body = await client.validate(request)
            await server.stop()
            return status, body

        status, body = asyncio.run(main())
        assert status == 503
        assert "draining" in body["error"]


# ---------------------------------------------------------------------------
# process-level: python -m repro.serve, SIGTERM drain
# ---------------------------------------------------------------------------


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "serving on http://" in line, line
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            assert code == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_cli_delegates_serve(self):
        from repro.cli import _parser  # the subcommand must be registered

        assert "serve" in _parser().format_help()


# ---------------------------------------------------------------------------
# Session thread-safety (the contract the worker tier relies on)
# ---------------------------------------------------------------------------


class TestSessionThreadSafety:
    def test_concurrent_engine_for_returns_one_engine(self, released):
        with Session(RunConfig(engine_cache_size=4)) as session:
            engines = []
            barrier = threading.Barrier(8)

            def grab():
                barrier.wait()
                engines.append(session.engine_for(released.model))

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({id(e) for e in engines}) == 1

    def test_concurrent_prepare_trains_once(self):
        with Session() as session:
            results = []
            barrier = threading.Barrier(4)

            def prep():
                barrier.wait()
                results.append(
                    session.prepare("mnist", train_size=30, test_size=12, epochs=1,
                                    width_multiplier=0.1)
                )

            threads = [threading.Thread(target=prep) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({id(r) for r in results}) == 1

    def test_close_is_idempotent_and_late_calls_raise(self, released):
        session = Session()
        session.engine_for(released.model)
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="session is closed"):
            session.engine_for(released.model)
        with pytest.raises(RuntimeError, match="session is closed"):
            _ = session.backend

    def test_engine_stats_and_fault_events_merge(self, released):
        with Session() as session:
            engine = session.engine_for(released.model)
            engine.forward(released.package.tests)
            engine.forward(released.package.tests)  # memo hit
            stats = session.engine_stats()
            assert stats.hits >= 1
            assert session.fault_events() == []
