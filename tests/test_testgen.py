"""Tests for the test-generation algorithms: greedy selection (Algorithm 1),
gradient-based synthesis (Algorithm 2), the combined method and baselines."""

import numpy as np
import pytest

from repro.coverage import CoverageTracker, set_validation_coverage
from repro.testgen import (
    CombinedGenerator,
    GenerationResult,
    GradientTestGenerator,
    NeuronCoverageSelector,
    RandomSelector,
    TrainingSetSelector,
    stack_samples,
)


class TestGenerationResult:
    def test_validates_history_lengths(self):
        with pytest.raises(ValueError):
            GenerationResult(
                tests=np.zeros((3, 1, 4, 4)), coverage_history=[0.1, 0.2]
            )

    def test_truncated(self):
        result = GenerationResult(
            tests=np.zeros((4, 2)),
            coverage_history=[0.1, 0.2, 0.3, 0.4],
            gains=[0.1, 0.1, 0.1, 0.1],
            sources=["training"] * 4,
            method="x",
        )
        cut = result.truncated(2)
        assert cut.num_tests == 2
        assert cut.final_coverage == 0.2
        with pytest.raises(ValueError):
            result.truncated(9)

    def test_switch_index(self):
        result = GenerationResult(
            tests=np.zeros((3, 2)),
            coverage_history=[0.1, 0.2, 0.3],
            gains=[0.1, 0.1, 0.1],
            sources=["training", "training", "gradient"],
        )
        assert result.switch_index() == 2
        all_training = GenerationResult(
            tests=np.zeros((2, 2)),
            coverage_history=[0.1, 0.2],
            gains=[0.1, 0.1],
            sources=["training", "training"],
        )
        assert all_training.switch_index() is None

    def test_final_coverage_requires_history(self):
        with pytest.raises(ValueError):
            GenerationResult(tests=np.zeros((1, 2))).final_coverage

    def test_stack_samples(self):
        out = stack_samples([np.zeros((1, 2, 2)), np.ones((1, 2, 2))])
        assert out.shape == (2, 1, 2, 2)
        with pytest.raises(ValueError):
            stack_samples([])


class TestTrainingSetSelector:
    def test_coverage_history_is_monotone(self, trained_cnn, digit_dataset):
        selector = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=30, rng=0)
        result = selector.generate(8)
        assert result.num_tests == 8
        diffs = np.diff([0.0] + result.coverage_history)
        assert np.all(diffs >= -1e-12)

    def test_greedy_beats_random_selection(self, trained_cnn, digit_dataset):
        budget = 6
        greedy = TrainingSetSelector(
            trained_cnn, digit_dataset, candidate_pool=40, rng=0
        ).generate(budget)
        random = RandomSelector(trained_cnn, digit_dataset, rng=0).generate(budget)
        assert greedy.final_coverage >= random.final_coverage - 1e-9

    def test_first_pick_is_the_best_single_sample(self, trained_cnn, digit_dataset):
        selector = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=20, rng=1)
        cache = selector._ensure_cache()
        best_single = cache.per_sample_coverage().max()
        result = selector.generate(1)
        assert result.coverage_history[0] == pytest.approx(best_single)

    def test_history_matches_recomputed_coverage(self, trained_cnn, digit_dataset):
        selector = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=25, rng=2)
        result = selector.generate(5)
        recomputed = set_validation_coverage(trained_cnn, result.tests)
        assert result.final_coverage == pytest.approx(recomputed)

    def test_budget_larger_than_pool_is_clamped(self, trained_cnn, digit_dataset):
        selector = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=5, rng=0)
        result = selector.generate(10)
        assert result.num_tests == 5

    def test_selected_dataset_indices_round_trip(self, trained_cnn, digit_dataset):
        selector = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=15, rng=3)
        result = selector.generate(3)
        indices = selector.selected_dataset_indices(result)
        np.testing.assert_allclose(digit_dataset.images[indices], result.tests)

    def test_rejects_bad_arguments(self, trained_cnn, digit_dataset):
        with pytest.raises(ValueError):
            TrainingSetSelector(trained_cnn, digit_dataset).generate(0)
        empty = digit_dataset.subset([])
        with pytest.raises(ValueError):
            TrainingSetSelector(trained_cnn, empty)

    def test_sources_all_training(self, trained_cnn, digit_dataset):
        result = TrainingSetSelector(
            trained_cnn, digit_dataset, candidate_pool=10, rng=0
        ).generate(3)
        assert set(result.sources) == {"training"}


class TestGradientTestGenerator:
    def test_batch_has_one_sample_per_class(self, trained_cnn):
        gen = GradientTestGenerator(trained_cnn, rng=0, max_updates=10)
        batch = gen.synthesize_batch()
        assert batch.shape == (trained_cnn.num_classes, *trained_cnn.input_shape)

    def test_samples_respect_clip_range(self, trained_cnn):
        gen = GradientTestGenerator(trained_cnn, rng=0, max_updates=10, clip_range=(0, 1))
        batch = gen.synthesize_batch()
        assert batch.min() >= 0.0
        assert batch.max() <= 1.0

    def test_synthesis_reduces_per_class_loss(self, trained_cnn):
        """Gradient descent on the input must actually decrease the loss (Eq. 8)."""
        from repro.nn.losses import SoftmaxCrossEntropy

        gen = GradientTestGenerator(
            trained_cnn, rng=0, max_updates=30, target="model", init_noise_std=0.0
        )
        k = trained_cnn.num_classes
        zeros = np.zeros((k, *trained_cnn.input_shape))
        targets = np.arange(k)
        loss_fn = SoftmaxCrossEntropy()
        loss_before, _ = loss_fn.value_and_grad(trained_cnn.predict(zeros), targets)
        batch = gen.synthesize_batch()
        loss_after, _ = loss_fn.value_and_grad(trained_cnn.predict(batch), targets)
        assert loss_after < loss_before

    def test_generation_coverage_monotone_and_counts(self, trained_cnn):
        gen = GradientTestGenerator(trained_cnn, rng=0, max_updates=15)
        result = gen.generate(7)
        assert result.num_tests == 7
        assert set(result.sources) == {"gradient"}
        diffs = np.diff([0.0] + result.coverage_history)
        assert np.all(diffs >= -1e-12)

    def test_generate_continues_from_existing_tracker(self, trained_cnn, digit_dataset):
        tracker = CoverageTracker(trained_cnn)
        tracker.add_sample(digit_dataset.images[0])
        start = tracker.coverage
        gen = GradientTestGenerator(trained_cnn, rng=0, max_updates=10)
        result = gen.generate(3, tracker=tracker)
        assert result.coverage_history[0] >= start - 1e-12

    def test_residual_mode_differs_from_model_mode(self, trained_cnn):
        residual = GradientTestGenerator(
            trained_cnn, rng=0, max_updates=10, target="residual"
        ).generate(4)
        plain = GradientTestGenerator(
            trained_cnn, rng=0, max_updates=10, target="model"
        ).generate(4)
        assert residual.num_tests == plain.num_tests == 4

    def test_synthesis_accuracy_in_unit_interval(self, trained_cnn):
        gen = GradientTestGenerator(trained_cnn, rng=0, max_updates=20)
        acc = gen.synthesis_accuracy()
        assert 0.0 <= acc <= 1.0

    def test_rejects_bad_arguments(self, trained_cnn):
        with pytest.raises(ValueError):
            GradientTestGenerator(trained_cnn, step_size=0)
        with pytest.raises(ValueError):
            GradientTestGenerator(trained_cnn, max_updates=0)
        with pytest.raises(ValueError):
            GradientTestGenerator(trained_cnn, target="other")
        with pytest.raises(ValueError):
            GradientTestGenerator(trained_cnn, clip_range=(1.0, 0.0))
        with pytest.raises(ValueError):
            GradientTestGenerator(trained_cnn).generate(0)


class TestCombinedGenerator:
    def test_switch_policy_parsing(self, trained_cnn, digit_dataset):
        with pytest.raises(ValueError):
            CombinedGenerator(trained_cnn, digit_dataset, switch_policy="never")
        with pytest.raises(ValueError):
            CombinedGenerator(trained_cnn, digit_dataset, switch_policy="fixed:x")
        with pytest.raises(ValueError):
            CombinedGenerator(trained_cnn, digit_dataset, switch_policy="fixed:-1")

    def test_fixed_switch_point_respected(self, trained_cnn, digit_dataset):
        gen = CombinedGenerator(
            trained_cnn,
            digit_dataset,
            switch_policy="fixed:3",
            candidate_pool=20,
            rng=0,
            max_updates=10,
        )
        result = gen.generate(6)
        assert result.sources[:3] == ["training"] * 3
        assert set(result.sources[3:]) == {"gradient"}

    def test_adaptive_combined_at_least_matches_selection(self, trained_cnn, digit_dataset):
        budget = 8
        combined = CombinedGenerator(
            trained_cnn, digit_dataset, candidate_pool=25, rng=0, max_updates=10
        ).generate(budget)
        selection = TrainingSetSelector(
            trained_cnn, digit_dataset, candidate_pool=25, rng=0
        ).generate(budget)
        assert combined.final_coverage >= selection.final_coverage - 0.02

    def test_coverage_history_monotone(self, trained_cnn, digit_dataset):
        result = CombinedGenerator(
            trained_cnn, digit_dataset, candidate_pool=20, rng=1, max_updates=10
        ).generate(6)
        diffs = np.diff([0.0] + result.coverage_history)
        assert np.all(diffs >= -1e-12)

    def test_rejects_zero_budget(self, trained_cnn, digit_dataset):
        with pytest.raises(ValueError):
            CombinedGenerator(trained_cnn, digit_dataset).generate(0)


class TestBaselines:
    def test_neuron_selector_histories(self, trained_cnn, digit_dataset):
        selector = NeuronCoverageSelector(trained_cnn, digit_dataset, candidate_pool=25, rng=0)
        result = selector.generate(6)
        assert result.num_tests == 6
        diffs = np.diff([0.0] + result.coverage_history)
        assert np.all(diffs >= -1e-12)
        assert result.final_coverage <= 1.0

    def test_neuron_selector_parameter_coverage_below_combined(
        self, trained_cnn, digit_dataset
    ):
        """Key claim behind Tables II/III: neuron-coverage tests achieve lower
        *parameter* coverage than the proposed method at equal budget."""
        budget = 8
        neuron_tests = NeuronCoverageSelector(
            trained_cnn, digit_dataset, candidate_pool=30, rng=0
        ).generate(budget)
        combined_tests = CombinedGenerator(
            trained_cnn, digit_dataset, candidate_pool=30, rng=0, max_updates=10
        ).generate(budget)
        neuron_pcov = set_validation_coverage(trained_cnn, neuron_tests.tests)
        combined_pcov = set_validation_coverage(trained_cnn, combined_tests.tests)
        assert combined_pcov >= neuron_pcov - 0.02

    def test_random_selector(self, trained_cnn, digit_dataset):
        result = RandomSelector(trained_cnn, digit_dataset, rng=0).generate(5)
        assert result.num_tests == 5
        with pytest.raises(ValueError):
            RandomSelector(trained_cnn, digit_dataset, rng=0).generate(0)

    def test_neuron_selector_rejects_empty_dataset(self, trained_cnn, digit_dataset):
        with pytest.raises(ValueError):
            NeuronCoverageSelector(trained_cnn, digit_dataset.subset([]))
