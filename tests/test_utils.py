"""Tests for the utility modules (rng, logging, config)."""

import logging

import numpy as np
import pytest

from repro.utils.config import TestGenConfig as GenCfg
from repro.utils import (
    CoverageConfig,
    DetectionConfig,
    ExperimentConfig,
    Timer,
    TrainingConfig,
    as_generator,
    check_probability,
    choice_without_replacement,
    derive_seed,
    enable_console_logging,
    get_logger,
    progress,
    spawn,
)


class TestRng:
    def test_as_generator_from_int_is_deterministic(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_as_generator_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_none_uses_default_seed(self):
        np.testing.assert_array_equal(as_generator(None).random(2), as_generator(None).random(2))

    def test_as_generator_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_produces_independent_generators(self):
        children = spawn(0, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_derive_seed_is_deterministic(self):
        assert derive_seed(1, 2) == derive_seed(1, 2)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)

    def test_choice_without_replacement(self):
        idx = choice_without_replacement(0, 10, 4)
        assert len(set(idx.tolist())) == 4
        with pytest.raises(ValueError):
            choice_without_replacement(0, 3, 5)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"

    def test_enable_console_logging_is_idempotent(self):
        enable_console_logging(logging.DEBUG)
        handlers_before = len(get_logger().handlers)
        enable_console_logging(logging.DEBUG)
        assert len(get_logger().handlers) == handlers_before

    def test_timer_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_progress_yields_everything(self):
        assert list(progress(range(7), every=2)) == list(range(7))


class TestConfigs:
    def test_training_config_validation(self):
        TrainingConfig().validate()
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0).validate()

    def test_coverage_config_validation(self):
        CoverageConfig().validate()
        with pytest.raises(ValueError):
            CoverageConfig(epsilon=-1).validate()
        with pytest.raises(ValueError):
            CoverageConfig(scalarization="norm").validate()

    def test_testgen_config_validation(self):
        GenCfg().validate()
        GenCfg(switch_policy="fixed:5").validate()
        with pytest.raises(ValueError):
            GenCfg(max_tests=0).validate()
        with pytest.raises(ValueError):
            GenCfg(switch_policy="sometimes").validate()
        with pytest.raises(ValueError):
            GenCfg(candidate_pool=0).validate()

    def test_detection_config_validation(self):
        DetectionConfig().validate()
        with pytest.raises(ValueError):
            DetectionConfig(trials=0).validate()
        with pytest.raises(ValueError):
            DetectionConfig(test_budgets=(0,)).validate()
        with pytest.raises(ValueError):
            DetectionConfig(attacks=("alien",)).validate()

    def test_experiment_config_bundle(self):
        config = ExperimentConfig(name="exp")
        config.validate()
        d = config.to_dict()
        assert d["name"] == "exp"
        assert "training" in d and "detection" in d
