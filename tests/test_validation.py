"""Tests for the vendor/user validation scheme and the detection experiments."""

import numpy as np
import pytest

from repro.attacks import RandomPerturbation, SingleBiasAttack
from repro.testgen import TrainingSetSelector
from repro.utils.config import DetectionConfig
from repro.validation import (
    DetectionExperiment,
    IPUser,
    IPVendor,
    ValidationPackage,
    default_attack_factories,
    validate_ip,
)


@pytest.fixture(scope="module")
def vendor_package(trained_cnn, digit_dataset):
    vendor = IPVendor(trained_cnn, digit_dataset)
    generator = TrainingSetSelector(trained_cnn, digit_dataset, candidate_pool=30, rng=0)
    return vendor.build_package(generator.generate(10))


class TestValidationPackage:
    def test_construction_and_labels(self, vendor_package):
        assert vendor_package.num_tests == 10
        assert vendor_package.expected_labels.shape == (10,)
        np.testing.assert_array_equal(
            vendor_package.expected_labels,
            np.argmax(vendor_package.expected_outputs, axis=1),
        )

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ValidationPackage(tests=np.zeros((2, 4)), expected_outputs=np.zeros((3, 5)))
        with pytest.raises(ValueError):
            ValidationPackage(
                tests=np.zeros((2, 4)), expected_outputs=np.zeros((2, 5)), output_atol=-1
            )
        with pytest.raises(ValueError):
            ValidationPackage(tests=np.zeros((2, 4)), expected_outputs=np.zeros(2))

    def test_subset(self, vendor_package):
        sub = vendor_package.subset(4)
        assert sub.num_tests == 4
        with pytest.raises(ValueError):
            vendor_package.subset(0)
        with pytest.raises(ValueError):
            vendor_package.subset(99)

    def test_digest_changes_when_contents_change(self, vendor_package):
        modified = ValidationPackage(
            tests=vendor_package.tests + 0.01,
            expected_outputs=vendor_package.expected_outputs,
        )
        assert modified.digest() != vendor_package.digest()

    def test_save_load_round_trip(self, vendor_package, tmp_path):
        path = vendor_package.save(tmp_path / "pkg.npz")
        loaded = ValidationPackage.load(path)
        np.testing.assert_allclose(loaded.tests, vendor_package.tests)
        np.testing.assert_allclose(loaded.expected_outputs, vendor_package.expected_outputs)
        assert loaded.metadata["num_tests"] == 10

    def test_load_detects_tampering(self, vendor_package, tmp_path):
        path = vendor_package.save(tmp_path / "pkg.npz")
        with np.load(path) as data:
            arrays = {k: data[k].copy() for k in data.files}
        arrays["expected_outputs"] = arrays["expected_outputs"] + 1.0
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="integrity"):
            ValidationPackage.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ValidationPackage.load(tmp_path / "nope.npz")


class TestVendor:
    def test_release_end_to_end(self, trained_cnn, digit_dataset):
        vendor = IPVendor(trained_cnn, digit_dataset)
        package = vendor.release(num_tests=6, candidate_pool=20, rng=0, max_updates=10)
        assert package.num_tests == 6
        assert package.metadata["generator"] == "combined"
        assert 0.0 < package.metadata["validation_coverage"] <= 1.0

    def test_build_package_requires_tests(self, trained_cnn, digit_dataset):
        vendor = IPVendor(trained_cnn, digit_dataset)
        with pytest.raises(ValueError):
            vendor.build_package(np.zeros((0, 1, 12, 12)))

    def test_default_generator_requires_training_set(self, trained_cnn):
        vendor = IPVendor(trained_cnn)
        with pytest.raises(ValueError):
            vendor.default_generator()

    def test_unbuilt_model_rejected(self):
        from repro.nn.layers import Dense
        from repro.nn.model import Sequential

        with pytest.raises(ValueError):
            IPVendor(Sequential([Dense(3)]))


class TestUser:
    def test_clean_ip_passes(self, trained_cnn, vendor_package):
        report = validate_ip(trained_cnn, vendor_package)
        assert report.passed
        assert not report.detected
        assert report.num_mismatched == 0
        assert "SECURE" in report.summary()

    def test_perturbed_ip_detected(self, trained_cnn, vendor_package):
        tampered = SingleBiasAttack(magnitude=20.0, rng=0).apply(trained_cnn).model
        report = validate_ip(tampered, vendor_package)
        assert report.detected
        assert report.num_mismatched > 0
        assert "TAMPERED" in report.summary()

    def test_callable_black_box_interface(self, trained_cnn, vendor_package):
        report = validate_ip(lambda x: trained_cnn.predict(x), vendor_package)
        assert report.passed

    def test_output_shape_change_is_detected(self, vendor_package):
        report = validate_ip(lambda x: np.zeros((x.shape[0], 3)), vendor_package)
        assert report.detected
        assert report.max_output_deviation == np.inf

    def test_tolerance_allows_tiny_numeric_noise(self, trained_cnn, vendor_package):
        def noisy_ip(x):
            return trained_cnn.predict(x) + 1e-9

        report = IPUser(vendor_package).validate(noisy_ip)
        assert report.passed

    def test_empty_package_rejected(self):
        with pytest.raises(ValueError):
            ValidationPackage(tests=np.zeros((0, 2)), expected_outputs=np.zeros((0, 3)))


class TestDetectionExperiment:
    def test_detection_rates_and_structure(self, trained_cnn, digit_dataset, vendor_package):
        config = DetectionConfig(trials=8, test_budgets=(2, 5, 10), attacks=("sba", "random"), seed=0)
        factories = default_attack_factories(digit_dataset.images[:10])
        experiment = DetectionExperiment(
            trained_cnn, {"proposed": vendor_package}, factories, config
        )
        table = experiment.run()
        assert set(table.attacks()) == {"sba", "random"}
        assert table.budgets() == [2, 5, 10]
        for attack in table.attacks():
            rates = [table.rate("proposed", attack, n) for n in table.budgets()]
            assert all(0.0 <= r <= 1.0 for r in rates)
            # more tests can only help (paired trials make this exact)
            assert rates == sorted(rates)

    def test_missing_factory_rejected(self, trained_cnn, digit_dataset, vendor_package):
        config = DetectionConfig(trials=2, test_budgets=(2,), attacks=("gda",))
        with pytest.raises(ValueError, match="factory"):
            DetectionExperiment(trained_cnn, {"p": vendor_package}, {}, config)

    def test_package_too_small_rejected(self, trained_cnn, digit_dataset, vendor_package):
        config = DetectionConfig(trials=2, test_budgets=(50,), attacks=("random",))
        factories = default_attack_factories(digit_dataset.images[:4])
        with pytest.raises(ValueError, match="budget"):
            DetectionExperiment(trained_cnn, {"p": vendor_package}, factories, config)

    def test_table_lookup_missing_cell(self, trained_cnn, digit_dataset, vendor_package):
        config = DetectionConfig(trials=2, test_budgets=(2,), attacks=("random",))
        factories = default_attack_factories(digit_dataset.images[:4])
        table = DetectionExperiment(
            trained_cnn, {"p": vendor_package}, factories, config
        ).run()
        with pytest.raises(KeyError):
            table.rate("p", "sba", 2)
        rows = table.as_rows()
        assert rows and {"method", "attack", "num_tests", "detection_rate"} <= set(rows[0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(trials=0).validate()
        with pytest.raises(ValueError):
            DetectionConfig(test_budgets=()).validate()
        with pytest.raises(ValueError):
            DetectionConfig(attacks=("voodoo",)).validate()
